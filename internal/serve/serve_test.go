package serve

import (
	"encoding/json"
	"errors"
	"sync"
	"testing"
	"time"

	"multihopbandit/internal/spec"
)

// gaussSpec is the baseline test scenario: a connected random network with
// the paper's gaussian channels.
func gaussSpec(n, m int, seed int64) spec.ScenarioSpec {
	return spec.ScenarioSpec{
		Seed:     seed,
		Topology: spec.TopologySpec{N: n, RequireConnected: true},
		Channel:  spec.ChannelSpec{M: m},
	}
}

func testConfig() InstanceConfig {
	return InstanceConfig{Spec: gaussSpec(8, 2, 1)}
}

func TestCreateDefaultsAndInfo(t *testing.T) {
	reg := NewRegistry(RegistryConfig{Shards: 4})
	defer reg.Close()
	h, err := reg.Create(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := h.Spec()
	if s.V != spec.Version {
		t.Fatalf("spec version not pinned: %+v", s)
	}
	if s.Decision.R != 2 || s.Decision.D != 4 || s.Decision.UpdateEvery != 1 {
		t.Fatalf("decision defaults not filled: %+v", s.Decision)
	}
	if s.Policy.Kind != spec.PolicyZhouLi || s.Channel.Kind != spec.ChannelGaussian || s.Channel.Sigma != 0.05 {
		t.Fatalf("kind defaults not filled: %+v", s)
	}
	if s.Topology.Kind != spec.TopologyRandom || s.Topology.TargetDegree != 6 {
		t.Fatalf("topology defaults not filled: %+v", s.Topology)
	}
	if s.NoiseSeed != s.Seed {
		t.Fatalf("noise seed defaulted to %d, want %d", s.NoiseSeed, s.Seed)
	}
	if got := h.Config(); got.ID != h.ID() || got.Spec != s {
		t.Fatalf("config = %+v", got)
	}
	info, err := h.Info()
	if err != nil {
		t.Fatal(err)
	}
	if info.K != 16 || info.Policy != "zhou-li" || info.Channel != "gaussian" || info.Slot != 0 {
		t.Fatalf("info = %+v", info)
	}
	if info.Shard != h.Shard() {
		t.Fatalf("info shard %d, handle shard %d", info.Shard, h.Shard())
	}
}

func TestCreateValidation(t *testing.T) {
	reg := NewRegistry(RegistryConfig{})
	defer reg.Close()
	mod := func(f func(*spec.ScenarioSpec)) InstanceConfig {
		s := gaussSpec(8, 2, 1)
		f(&s)
		return InstanceConfig{Spec: s}
	}
	bad := []InstanceConfig{
		mod(func(s *spec.ScenarioSpec) { s.Topology.N = 0 }),
		mod(func(s *spec.ScenarioSpec) { s.Channel.M = 0 }),
		mod(func(s *spec.ScenarioSpec) { s.Decision.UpdateEvery = -1 }),
		mod(func(s *spec.ScenarioSpec) { s.Channel.Sigma = -0.1 }),
		mod(func(s *spec.ScenarioSpec) { s.Decision.R = -1 }),
		mod(func(s *spec.ScenarioSpec) { s.Policy.Kind = "no-such-policy" }),
		mod(func(s *spec.ScenarioSpec) { s.Policy = spec.PolicySpec{Kind: spec.PolicyDiscountedZhouLi, Gamma: 1.5} }),
		mod(func(s *spec.ScenarioSpec) { s.Channel.Kind = "no-such-channel" }),
		mod(func(s *spec.ScenarioSpec) { s.Channel.Period = 10 }), // gaussian has no period
		mod(func(s *spec.ScenarioSpec) { s.V = 99 }),
	}
	for i, cfg := range bad {
		if _, err := reg.Create(cfg); err == nil {
			t.Errorf("config %d (%+v) should be rejected", i, cfg.Spec)
		}
	}

	// The rejections carry the spec package's typed errors.
	_, err := reg.Create(mod(func(s *spec.ScenarioSpec) { s.Policy.Kind = "no-such-policy" }))
	var ke *spec.KindError
	if !errors.As(err, &ke) || ke.Field != "policy.kind" {
		t.Fatalf("unknown policy error = %v, want KindError on policy.kind", err)
	}
	_, err = reg.Create(mod(func(s *spec.ScenarioSpec) { s.V = 99 }))
	var ve *spec.VersionError
	if !errors.As(err, &ve) || ve.Got != 99 {
		t.Fatalf("version error = %v, want VersionError", err)
	}
}

// TestLegacyFlatJSONMapsToCanonicalSpec pins the compatibility contract:
// the pre-spec flat InstanceConfig JSON decodes to exactly the canonical
// spec its field-by-field translation produces.
func TestLegacyFlatJSONMapsToCanonicalSpec(t *testing.T) {
	legacy := `{
		"id": "legacy-1",
		"n": 10, "m": 2, "seed": 7, "noise_seed": 42,
		"target_degree": 5.5, "require_connected": true,
		"policy": "discounted-zhou-li", "gamma": 0.97,
		"r": 3, "d": 6, "update_every": 4, "sigma": 0.1
	}`
	var cfg InstanceConfig
	if err := json.Unmarshal([]byte(legacy), &cfg); err != nil {
		t.Fatal(err)
	}
	got, err := cfg.Spec.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	want, err := spec.ScenarioSpec{
		Seed:      7,
		NoiseSeed: 42,
		Topology: spec.TopologySpec{
			Kind: spec.TopologyRandom, N: 10,
			TargetDegree: 5.5, RequireConnected: true,
		},
		Channel: spec.ChannelSpec{Kind: spec.ChannelGaussian, M: 2, Sigma: 0.1},
		Policy:  spec.PolicySpec{Kind: spec.PolicyDiscountedZhouLi, Gamma: 0.97},
		Decision: spec.DecisionSpec{
			R: 3, D: 6, UpdateEvery: 4,
		},
	}.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.ID != "legacy-1" || got != want {
		t.Fatalf("legacy mapping:\n got %+v\nwant %+v", got, want)
	}

	// A stray gamma on a non-discounted policy was silently ignored by the
	// legacy fill; the flat mapping must keep accepting (and ignoring) it.
	if err := json.Unmarshal([]byte(`{"n":8,"m":2,"seed":1,"policy":"zhou-li","gamma":0.99}`), &cfg); err != nil {
		t.Fatal(err)
	}
	if _, err := cfg.Spec.Canonical(); err != nil {
		t.Fatalf("legacy stray gamma should stay accepted: %v", err)
	}

	// Unknown fields are rejected in the flat shape too.
	if err := json.Unmarshal([]byte(`{"n":8,"m":2,"frobnicate":true}`), &cfg); err == nil {
		t.Fatal("unknown flat field should be rejected")
	}
	// And in the spec shape.
	if err := json.Unmarshal([]byte(`{"spec":{"seed":1,"topology":{"n":8},"channel":{"m":2},"bogus":1}}`), &cfg); err == nil {
		t.Fatal("unknown spec field should be rejected")
	}
}

// TestSnapshotUnsupportedTyped checks ε-greedy instances (creatable via
// spec) fail snapshot and restore with the typed sentinel rather than a
// panic or a zero snapshot.
func TestSnapshotUnsupportedTyped(t *testing.T) {
	reg := NewRegistry(RegistryConfig{})
	defer reg.Close()
	s := gaussSpec(8, 2, 1)
	s.Policy = spec.PolicySpec{Kind: spec.PolicyEpsGreedy}
	h, err := reg.Create(InstanceConfig{Spec: s})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Step(10); err != nil {
		t.Fatal(err)
	}
	snap, err := h.Snapshot()
	if !errors.Is(err, ErrSnapshotUnsupported) {
		t.Fatalf("snapshot on eps-greedy: err = %v, want ErrSnapshotUnsupported", err)
	}
	if snap != nil {
		t.Fatalf("snapshot on eps-greedy returned %+v, want nil", snap)
	}
	if err := h.Restore(&Snapshot{}); !errors.Is(err, ErrSnapshotUnsupported) {
		t.Fatalf("restore on eps-greedy: err = %v, want ErrSnapshotUnsupported", err)
	}
	// The instance still serves after the rejected operations.
	if _, err := h.Step(1); err != nil {
		t.Fatal(err)
	}
}

// TestDistnetExecutionRejected: the serving runtime hosts only the
// lock-step decider; a spec opting into the distnet execution is refused
// with the typed error (it is a simulator/bench configuration).
func TestDistnetExecutionRejected(t *testing.T) {
	reg := NewRegistry(RegistryConfig{})
	defer reg.Close()
	cfg := testConfig()
	cfg.Spec.Decision.Execution = spec.ExecutionDistnet
	if _, err := reg.Create(cfg); !errors.Is(err, ErrExecutionUnsupported) {
		t.Fatalf("distnet create: err = %v, want ErrExecutionUnsupported", err)
	}
}

func TestDuplicateID(t *testing.T) {
	reg := NewRegistry(RegistryConfig{})
	defer reg.Close()
	cfg := testConfig()
	cfg.ID = "dup"
	if _, err := reg.Create(cfg); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Create(cfg); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate create: err = %v, want ErrExists", err)
	}
}

func TestArtifactSharingAcrossInstances(t *testing.T) {
	reg := NewRegistry(RegistryConfig{})
	defer reg.Close()
	for i := 0; i < 8; i++ {
		cfg := testConfig()
		cfg.Spec.NoiseSeed = int64(100 + i)
		if _, err := reg.Create(cfg); err != nil {
			t.Fatal(err)
		}
	}
	// Same artifact key across channel kinds and policies: a Gilbert–Elliott
	// ε-greedy replica still shares the build.
	cfg := testConfig()
	cfg.Spec.Channel.Kind = spec.ChannelGilbertElliott
	cfg.Spec.Policy = spec.PolicySpec{Kind: spec.PolicyEpsGreedy}
	if _, err := reg.Create(cfg); err != nil {
		t.Fatal(err)
	}
	st := reg.Cache().Stats()
	if st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("cache stats = %+v, want one build shared by 9 instances", st)
	}
	if st.Hits != 8 {
		t.Fatalf("cache hits = %d, want 8", st.Hits)
	}
}

func TestListAndRemove(t *testing.T) {
	reg := NewRegistry(RegistryConfig{Shards: 3})
	defer reg.Close()
	ids := []string{"a", "b", "c"}
	for _, id := range ids {
		cfg := testConfig()
		cfg.ID = id
		if _, err := reg.Create(cfg); err != nil {
			t.Fatal(err)
		}
	}
	infos := reg.List()
	if len(infos) != 3 {
		t.Fatalf("list returned %d instances", len(infos))
	}
	for i, id := range ids {
		if infos[i].ID != id {
			t.Fatalf("list not sorted: %v", infos)
		}
	}
	if err := reg.Remove("b"); err != nil {
		t.Fatal(err)
	}
	if err := reg.Remove("b"); err == nil {
		t.Fatal("double remove should fail")
	}
	if _, ok := reg.Get("b"); ok {
		t.Fatal("removed instance still resolvable")
	}
	if len(reg.List()) != 2 {
		t.Fatal("list after remove")
	}
}

func TestClosedInstanceErrors(t *testing.T) {
	reg := NewRegistry(RegistryConfig{})
	h, err := reg.Create(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Remove(h.ID()); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Step(1); !errors.Is(err, ErrClosed) {
		t.Fatalf("step on closed instance: %v", err)
	}
	if _, err := h.Assignment(); !errors.Is(err, ErrClosed) {
		t.Fatalf("assignment on closed instance: %v", err)
	}
	if err := h.PushObservations([]ObservationBatch{{}}); !errors.Is(err, ErrClosed) {
		t.Fatalf("push on closed instance: %v", err)
	}
}

func TestPushObservationsAsync(t *testing.T) {
	reg := NewRegistry(RegistryConfig{})
	defer reg.Close()
	h, err := reg.Create(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	as, err := h.Assignment()
	if err != nil {
		t.Fatal(err)
	}
	rewards := make([]float64, len(as.Winners))
	for i := range rewards {
		rewards[i] = 0.5
	}
	for r := 0; r < 10; r++ {
		if err := h.PushObservations([]ObservationBatch{{Played: as.Winners, Rewards: rewards}}); err != nil {
			t.Fatal(err)
		}
	}
	// The mailbox serializes: a subsequent synchronous request observes all
	// queued batches applied.
	info, err := h.Info()
	if err != nil {
		t.Fatal(err)
	}
	if info.Slot != 10 || info.Observations != 10 {
		t.Fatalf("async observations not applied: %+v", info)
	}
	// A bad async batch surfaces only in the error counter.
	if err := h.PushObservations([]ObservationBatch{{Played: []int{9999}, Rewards: []float64{1}}}); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Info(); err != nil {
		t.Fatal(err)
	}
	errs := reg.Metrics().Shards[h.Shard()].ObservationErrors.Load()
	if errs != 1 {
		t.Fatalf("observation errors = %d, want 1", errs)
	}
}

func TestObserveValidation(t *testing.T) {
	reg := NewRegistry(RegistryConfig{})
	defer reg.Close()
	h, err := reg.Create(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Observe(nil); err == nil {
		t.Fatal("empty observe should fail")
	}
	if _, err := h.Observe([]ObservationBatch{{Played: []int{1, 2}, Rewards: []float64{0.5}}}); err == nil {
		t.Fatal("mismatched batch should fail")
	}
	if _, err := h.Observe([]ObservationBatch{{Played: []int{-1}, Rewards: []float64{0.5}}}); err == nil {
		t.Fatal("out-of-range arm should fail")
	}
	if _, err := h.Step(0); err == nil {
		t.Fatal("zero-slot step should fail")
	}
}

// TestConcurrentInstancesAreIndependent runs many replicas concurrently and
// checks every replica's trajectory matches its serial twin — the actor
// confinement claim under the race detector.
func TestConcurrentInstancesAreIndependent(t *testing.T) {
	const replicas = 16
	reg := NewRegistry(RegistryConfig{Shards: 4})
	defer reg.Close()
	var wg sync.WaitGroup
	for i := 0; i < replicas; i++ {
		cfg := testConfig()
		cfg.Spec.NoiseSeed = int64(1000 + i)
		h, err := reg.Create(cfg)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(h *Instance) {
			defer wg.Done()
			total := 0
			for total < 120 {
				res, err := h.Step(30)
				if err != nil {
					t.Error(err)
					return
				}
				total += res.Slots
			}
		}(h)
	}
	wg.Wait()
	if got := reg.Metrics().TotalSlots(); got != replicas*120 {
		t.Fatalf("total slots = %d, want %d", got, replicas*120)
	}
	if reg.Metrics().TotalDecisions() != replicas*120 {
		t.Fatalf("total decisions = %d, want %d (update every slot)", reg.Metrics().TotalDecisions(), replicas*120)
	}
}

// TestConcurrentRequestsOneInstance hammers a single actor from many
// goroutines; the mailbox must serialize them without loss.
func TestConcurrentRequestsOneInstance(t *testing.T) {
	reg := NewRegistry(RegistryConfig{MailboxDepth: 4})
	defer reg.Close()
	h, err := reg.Create(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	const (
		clients = 8
		batches = 25
	)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				if _, err := h.Step(2); err != nil {
					t.Error(err)
					return
				}
				if _, err := h.Assignment(); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	info, err := h.Info()
	if err != nil {
		t.Fatal(err)
	}
	if info.Slot != clients*batches*2 {
		t.Fatalf("slot = %d, want %d", info.Slot, clients*batches*2)
	}
}

// TestHistogram pins the serving histogram's quantile semantics after the
// switch to obs.Histogram: quantiles interpolate inside the log₂ bucket
// (nanosecond recording unit) instead of returning the bucket's upper
// bound, so a mass of identical observations reads back inside its own
// bucket rather than at up to 2× its value.
func TestHistogram(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram should read zero")
	}
	for i := 0; i < 100; i++ {
		h.ObserveDuration(100 * time.Microsecond)
	}
	h.ObserveDuration(50 * time.Millisecond)
	if h.Count() != 101 {
		t.Fatalf("count = %d", h.Count())
	}
	// 100µs = 100000ns sits in bucket [2^16, 2^17) = [65.5µs, 131.1µs); the
	// old upper-bound estimator reported 128µs (the µs-bucket edge) for a
	// value that is exactly 100µs. Interpolation must stay inside the bucket.
	p50 := h.Quantile(0.5)
	if p50 < 65536 || p50 >= 131072 {
		t.Fatalf("p50 = %.0fns, want inside the [65536, 131072) bucket", p50)
	}
	// q=1 is the max: its rank is the outlier's, so the estimate must land
	// in the outlier's bucket (50ms ∈ [2^25, 2^26)).
	p100 := h.Quantile(1)
	if p100 < 33554432 || p100 >= 67108864 {
		t.Fatalf("max quantile = %.0fns, should land in the outlier's bucket", p100)
	}
	if h.Mean() < 100000 {
		t.Fatalf("mean = %.0fns", h.Mean())
	}
}

// TestObserveAtomicValidation sends a request whose second batch is
// invalid: nothing may be applied (clients retry whole requests, so a
// half-applied request would silently double-apply batch 0 on retry).
func TestObserveAtomicValidation(t *testing.T) {
	reg := NewRegistry(RegistryConfig{})
	defer reg.Close()
	h, err := reg.Create(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	as, err := h.Assignment()
	if err != nil {
		t.Fatal(err)
	}
	rewards := make([]float64, len(as.Winners))
	good := ObservationBatch{Played: as.Winners, Rewards: rewards}
	bad := ObservationBatch{Played: []int{99999}, Rewards: []float64{0.5}}
	if _, err := h.Observe([]ObservationBatch{good, bad}); err == nil {
		t.Fatal("mixed request should be rejected")
	}
	info, err := h.Info()
	if err != nil {
		t.Fatal(err)
	}
	if info.Slot != 0 || info.Observations != 0 {
		t.Fatalf("rejected request was partially applied: %+v", info)
	}
	if got := reg.Metrics().TotalSlots(); got != 0 {
		t.Fatalf("rejected request counted %d slots", got)
	}
}

// TestAutoIDSkipsTakenNames reserves an explicit "inst-1" and checks
// auto-generation steps over it instead of failing.
func TestAutoIDSkipsTakenNames(t *testing.T) {
	reg := NewRegistry(RegistryConfig{})
	defer reg.Close()
	cfg := testConfig()
	cfg.ID = "inst-1"
	if _, err := reg.Create(cfg); err != nil {
		t.Fatal(err)
	}
	h, err := reg.Create(testConfig())
	if err != nil {
		t.Fatalf("auto-ID create should skip the taken name: %v", err)
	}
	if h.ID() == "inst-1" {
		t.Fatal("auto ID collided with the explicit one")
	}
	if len(reg.List()) != 2 {
		t.Fatalf("want 2 instances, have %v", reg.List())
	}
}

// TestListDoesNotBlockOnBusyInstance parks an instance behind a slow step
// batch and checks List still answers from the published snapshots.
func TestListDoesNotBlockOnBusyInstance(t *testing.T) {
	reg := NewRegistry(RegistryConfig{})
	defer reg.Close()
	h, err := reg.Create(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	stepDone := make(chan struct{})
	go func() {
		defer close(stepDone)
		if _, err := h.Step(5000); err != nil {
			t.Error(err)
		}
	}()
	listDone := make(chan []InstanceInfo, 1)
	go func() { listDone <- reg.List() }()
	select {
	case infos := <-listDone:
		if len(infos) != 1 {
			t.Fatalf("list = %v", infos)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("List blocked behind a busy instance")
	}
	<-stepDone
}
