package serve

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func testConfig() InstanceConfig {
	return InstanceConfig{N: 8, M: 2, Seed: 1, RequireConnected: true}
}

func TestCreateDefaultsAndInfo(t *testing.T) {
	reg := NewRegistry(RegistryConfig{Shards: 4})
	defer reg.Close()
	h, err := reg.Create(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := h.Config()
	if cfg.R != 2 || cfg.D != 4 || cfg.UpdateEvery != 1 || cfg.Policy != "zhou-li" || cfg.Sigma != 0.05 {
		t.Fatalf("defaults not filled: %+v", cfg)
	}
	if cfg.NoiseSeed != cfg.Seed {
		t.Fatalf("noise seed defaulted to %d, want %d", cfg.NoiseSeed, cfg.Seed)
	}
	info, err := h.Info()
	if err != nil {
		t.Fatal(err)
	}
	if info.K != 16 || info.Policy != "zhou-li" || info.Slot != 0 {
		t.Fatalf("info = %+v", info)
	}
	if info.Shard != h.Shard() {
		t.Fatalf("info shard %d, handle shard %d", info.Shard, h.Shard())
	}
}

func TestCreateValidation(t *testing.T) {
	reg := NewRegistry(RegistryConfig{})
	defer reg.Close()
	bad := []InstanceConfig{
		{N: 0, M: 2},
		{N: 8, M: 0},
		{N: 8, M: 2, UpdateEvery: -1},
		{N: 8, M: 2, Sigma: -0.1},
		{N: 8, M: 2, R: -1},
		{N: 8, M: 2, Policy: "no-such-policy"},
		{N: 8, M: 2, Policy: "discounted-zhou-li", Gamma: 1.5},
	}
	for i, cfg := range bad {
		if _, err := reg.Create(cfg); err == nil {
			t.Errorf("config %d (%+v) should be rejected", i, cfg)
		}
	}
}

func TestDuplicateID(t *testing.T) {
	reg := NewRegistry(RegistryConfig{})
	defer reg.Close()
	cfg := testConfig()
	cfg.ID = "dup"
	if _, err := reg.Create(cfg); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Create(cfg); err == nil || !strings.Contains(err.Error(), "already exists") {
		t.Fatalf("duplicate create: err = %v", err)
	}
}

func TestArtifactSharingAcrossInstances(t *testing.T) {
	reg := NewRegistry(RegistryConfig{})
	defer reg.Close()
	for i := 0; i < 8; i++ {
		cfg := testConfig()
		cfg.NoiseSeed = int64(100 + i)
		if _, err := reg.Create(cfg); err != nil {
			t.Fatal(err)
		}
	}
	st := reg.Cache().Stats()
	if st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("cache stats = %+v, want one build shared by 8 instances", st)
	}
	if st.Hits != 7 {
		t.Fatalf("cache hits = %d, want 7", st.Hits)
	}
}

func TestListAndRemove(t *testing.T) {
	reg := NewRegistry(RegistryConfig{Shards: 3})
	defer reg.Close()
	ids := []string{"a", "b", "c"}
	for _, id := range ids {
		cfg := testConfig()
		cfg.ID = id
		if _, err := reg.Create(cfg); err != nil {
			t.Fatal(err)
		}
	}
	infos := reg.List()
	if len(infos) != 3 {
		t.Fatalf("list returned %d instances", len(infos))
	}
	for i, id := range ids {
		if infos[i].ID != id {
			t.Fatalf("list not sorted: %v", infos)
		}
	}
	if err := reg.Remove("b"); err != nil {
		t.Fatal(err)
	}
	if err := reg.Remove("b"); err == nil {
		t.Fatal("double remove should fail")
	}
	if _, ok := reg.Get("b"); ok {
		t.Fatal("removed instance still resolvable")
	}
	if len(reg.List()) != 2 {
		t.Fatal("list after remove")
	}
}

func TestClosedInstanceErrors(t *testing.T) {
	reg := NewRegistry(RegistryConfig{})
	h, err := reg.Create(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Remove(h.ID()); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Step(1); !errors.Is(err, ErrClosed) {
		t.Fatalf("step on closed instance: %v", err)
	}
	if _, err := h.Assignment(); !errors.Is(err, ErrClosed) {
		t.Fatalf("assignment on closed instance: %v", err)
	}
	if err := h.PushObservations([]ObservationBatch{{}}); !errors.Is(err, ErrClosed) {
		t.Fatalf("push on closed instance: %v", err)
	}
}

func TestPushObservationsAsync(t *testing.T) {
	reg := NewRegistry(RegistryConfig{})
	defer reg.Close()
	h, err := reg.Create(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	as, err := h.Assignment()
	if err != nil {
		t.Fatal(err)
	}
	rewards := make([]float64, len(as.Winners))
	for i := range rewards {
		rewards[i] = 0.5
	}
	for r := 0; r < 10; r++ {
		if err := h.PushObservations([]ObservationBatch{{Played: as.Winners, Rewards: rewards}}); err != nil {
			t.Fatal(err)
		}
	}
	// The mailbox serializes: a subsequent synchronous request observes all
	// queued batches applied.
	info, err := h.Info()
	if err != nil {
		t.Fatal(err)
	}
	if info.Slot != 10 || info.Observations != 10 {
		t.Fatalf("async observations not applied: %+v", info)
	}
	// A bad async batch surfaces only in the error counter.
	if err := h.PushObservations([]ObservationBatch{{Played: []int{9999}, Rewards: []float64{1}}}); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Info(); err != nil {
		t.Fatal(err)
	}
	errs := reg.Metrics().Shards[h.Shard()].ObservationErrors.Load()
	if errs != 1 {
		t.Fatalf("observation errors = %d, want 1", errs)
	}
}

func TestObserveValidation(t *testing.T) {
	reg := NewRegistry(RegistryConfig{})
	defer reg.Close()
	h, err := reg.Create(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Observe(nil); err == nil {
		t.Fatal("empty observe should fail")
	}
	if _, err := h.Observe([]ObservationBatch{{Played: []int{1, 2}, Rewards: []float64{0.5}}}); err == nil {
		t.Fatal("mismatched batch should fail")
	}
	if _, err := h.Observe([]ObservationBatch{{Played: []int{-1}, Rewards: []float64{0.5}}}); err == nil {
		t.Fatal("out-of-range arm should fail")
	}
	if _, err := h.Step(0); err == nil {
		t.Fatal("zero-slot step should fail")
	}
}

// TestConcurrentInstancesAreIndependent runs many replicas concurrently and
// checks every replica's trajectory matches its serial twin — the actor
// confinement claim under the race detector.
func TestConcurrentInstancesAreIndependent(t *testing.T) {
	const replicas = 16
	reg := NewRegistry(RegistryConfig{Shards: 4})
	defer reg.Close()
	var wg sync.WaitGroup
	for i := 0; i < replicas; i++ {
		cfg := testConfig()
		cfg.NoiseSeed = int64(1000 + i)
		h, err := reg.Create(cfg)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(h *Instance) {
			defer wg.Done()
			total := 0
			for total < 120 {
				res, err := h.Step(30)
				if err != nil {
					t.Error(err)
					return
				}
				total += res.Slots
			}
		}(h)
	}
	wg.Wait()
	if got := reg.Metrics().TotalSlots(); got != replicas*120 {
		t.Fatalf("total slots = %d, want %d", got, replicas*120)
	}
	if reg.Metrics().TotalDecisions() != replicas*120 {
		t.Fatalf("total decisions = %d, want %d (update every slot)", reg.Metrics().TotalDecisions(), replicas*120)
	}
}

// TestConcurrentRequestsOneInstance hammers a single actor from many
// goroutines; the mailbox must serialize them without loss.
func TestConcurrentRequestsOneInstance(t *testing.T) {
	reg := NewRegistry(RegistryConfig{MailboxDepth: 4})
	defer reg.Close()
	h, err := reg.Create(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	const (
		clients = 8
		batches = 25
	)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				if _, err := h.Step(2); err != nil {
					t.Error(err)
					return
				}
				if _, err := h.Assignment(); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	info, err := h.Info()
	if err != nil {
		t.Fatal(err)
	}
	if info.Slot != clients*batches*2 {
		t.Fatalf("slot = %d, want %d", info.Slot, clients*batches*2)
	}
}

func TestHistogram(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram should read zero")
	}
	for i := 0; i < 100; i++ {
		h.Observe(100 * time.Microsecond)
	}
	h.Observe(50 * time.Millisecond)
	if h.Count() != 101 {
		t.Fatalf("count = %d", h.Count())
	}
	p50 := h.Quantile(0.5)
	if p50 < 100*time.Microsecond || p50 > 256*time.Microsecond {
		t.Fatalf("p50 = %v, want within the 128µs bucket edge", p50)
	}
	p99 := h.Quantile(0.995)
	if p99 < 50*time.Millisecond {
		t.Fatalf("p99.5 = %v, should cover the slow outlier", p99)
	}
	if h.Mean() < 100*time.Microsecond {
		t.Fatalf("mean = %v", h.Mean())
	}
}

// TestObserveAtomicValidation sends a request whose second batch is
// invalid: nothing may be applied (clients retry whole requests, so a
// half-applied request would silently double-apply batch 0 on retry).
func TestObserveAtomicValidation(t *testing.T) {
	reg := NewRegistry(RegistryConfig{})
	defer reg.Close()
	h, err := reg.Create(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	as, err := h.Assignment()
	if err != nil {
		t.Fatal(err)
	}
	rewards := make([]float64, len(as.Winners))
	good := ObservationBatch{Played: as.Winners, Rewards: rewards}
	bad := ObservationBatch{Played: []int{99999}, Rewards: []float64{0.5}}
	if _, err := h.Observe([]ObservationBatch{good, bad}); err == nil {
		t.Fatal("mixed request should be rejected")
	}
	info, err := h.Info()
	if err != nil {
		t.Fatal(err)
	}
	if info.Slot != 0 || info.Observations != 0 {
		t.Fatalf("rejected request was partially applied: %+v", info)
	}
	if got := reg.Metrics().TotalSlots(); got != 0 {
		t.Fatalf("rejected request counted %d slots", got)
	}
}

// TestAutoIDSkipsTakenNames reserves an explicit "inst-1" and checks
// auto-generation steps over it instead of failing.
func TestAutoIDSkipsTakenNames(t *testing.T) {
	reg := NewRegistry(RegistryConfig{})
	defer reg.Close()
	cfg := testConfig()
	cfg.ID = "inst-1"
	if _, err := reg.Create(cfg); err != nil {
		t.Fatal(err)
	}
	h, err := reg.Create(testConfig())
	if err != nil {
		t.Fatalf("auto-ID create should skip the taken name: %v", err)
	}
	if h.ID() == "inst-1" {
		t.Fatal("auto ID collided with the explicit one")
	}
	if len(reg.List()) != 2 {
		t.Fatalf("want 2 instances, have %v", reg.List())
	}
}

// TestListDoesNotBlockOnBusyInstance parks an instance behind a slow step
// batch and checks List still answers from the published snapshots.
func TestListDoesNotBlockOnBusyInstance(t *testing.T) {
	reg := NewRegistry(RegistryConfig{})
	defer reg.Close()
	h, err := reg.Create(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	stepDone := make(chan struct{})
	go func() {
		defer close(stepDone)
		if _, err := h.Step(5000); err != nil {
			t.Error(err)
		}
	}()
	listDone := make(chan []InstanceInfo, 1)
	go func() { listDone <- reg.List() }()
	select {
	case infos := <-listDone:
		if len(infos) != 1 {
			t.Fatalf("list = %v", infos)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("List blocked behind a busy instance")
	}
	<-stepDone
}
