package sim

import (
	"fmt"
	"strings"

	"multihopbandit/internal/channel"
	"multihopbandit/internal/core"
	"multihopbandit/internal/extgraph"
	"multihopbandit/internal/mwis"
	"multihopbandit/internal/policy"
	"multihopbandit/internal/protocol"
	"multihopbandit/internal/rng"
	"multihopbandit/internal/topology"
)

// AblationConfig parameterizes the single-decision ablations (r, D, solver).
type AblationConfig struct {
	// N, M are the network dimensions (defaults 60, 5).
	N, M int
	// Seed drives topology and weights.
	Seed int64
}

func (c *AblationConfig) fill() {
	if c.N == 0 {
		c.N = 60
	}
	if c.M == 0 {
		c.M = 5
	}
}

// AblationPoint is one parameter setting's outcome.
type AblationPoint struct {
	// Label identifies the setting ("r=2", "D=4", "greedy", ...).
	Label string
	// WeightKbps is the committed decision weight.
	WeightKbps float64
	// MiniRounds executed.
	MiniRounds int
	// MaxMessages is the largest per-vertex relay count.
	MaxMessages int
	// MiniTimeslots consumed by the decision.
	MiniTimeslots int
}

func ablationInstance(cfg AblationConfig) (*extgraph.Extended, []float64, error) {
	src := rng.New(cfg.Seed).Split("ablation")
	nw, err := topology.Random(topology.RandomConfig{N: cfg.N}, src.Split("topology"))
	if err != nil {
		return nil, nil, err
	}
	ext, err := extgraph.Build(nw.G, cfg.M)
	if err != nil {
		return nil, nil, err
	}
	ch, err := channel.NewModel(channel.Config{N: cfg.N, M: cfg.M}, src.Split("channels"))
	if err != nil {
		return nil, nil, err
	}
	return ext, ch.Means(), nil
}

func runDecision(ext *extgraph.Extended, w []float64, r, d int, solver mwis.Solver, label string) (AblationPoint, error) {
	rt, err := protocol.New(protocol.Config{Ext: ext, R: r, D: d, Solver: solver})
	if err != nil {
		return AblationPoint{}, err
	}
	res, err := rt.Decide(w, nil)
	if err != nil {
		return AblationPoint{}, err
	}
	weight := 0.0
	if len(res.WeightByMiniRound) > 0 {
		weight = res.WeightByMiniRound[len(res.WeightByMiniRound)-1]
	}
	return AblationPoint{
		Label:         label,
		WeightKbps:    channel.Kbps(weight),
		MiniRounds:    res.MiniRounds,
		MaxMessages:   res.Stats.MaxMessages(),
		MiniTimeslots: res.Stats.MiniTimeslots,
	}, nil
}

// RunAblationR sweeps the ball parameter r ∈ {1, 2, 3} on one decision.
func RunAblationR(cfg AblationConfig) ([]AblationPoint, error) {
	cfg.fill()
	ext, w, err := ablationInstance(cfg)
	if err != nil {
		return nil, err
	}
	var out []AblationPoint
	for _, r := range []int{1, 2, 3} {
		p, err := runDecision(ext, w, r, 4, nil, fmt.Sprintf("r=%d", r))
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// RunAblationD sweeps the mini-round cap D ∈ {1, 2, 4, 8, unbounded}.
func RunAblationD(cfg AblationConfig) ([]AblationPoint, error) {
	cfg.fill()
	ext, w, err := ablationInstance(cfg)
	if err != nil {
		return nil, err
	}
	var out []AblationPoint
	for _, d := range []int{1, 2, 4, 8, 0} {
		label := fmt.Sprintf("D=%d", d)
		if d == 0 {
			label = "D=∞"
		}
		p, err := runDecision(ext, w, 2, d, nil, label)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// RunAblationSolver compares the LocalLeaders' local MWIS solver.
func RunAblationSolver(cfg AblationConfig) ([]AblationPoint, error) {
	cfg.fill()
	ext, w, err := ablationInstance(cfg)
	if err != nil {
		return nil, err
	}
	solvers := []mwis.Solver{mwis.Greedy{}, mwis.Hybrid{}, mwis.Exact{Budget: 500000}}
	var out []AblationPoint
	for _, solver := range solvers {
		p, err := runDecision(ext, w, 2, 4, solver, solver.Name())
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// RenderAblation prints ablation points as an aligned table.
func RenderAblation(title string, points []AblationPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%12s %12s %11s %9s %14s\n",
		"setting", "weight_kbps", "mini-rounds", "max-msgs", "mini-timeslots")
	for _, p := range points {
		fmt.Fprintf(&b, "%12s %12.0f %11d %9d %14d\n",
			p.Label, p.WeightKbps, p.MiniRounds, p.MaxMessages, p.MiniTimeslots)
	}
	return b.String()
}

// ShiftConfig parameterizes the non-stationary extension experiment (the
// paper's future-work adversarial setting).
type ShiftConfig struct {
	// N, M are the network dimensions (defaults 15, 3).
	N, M int
	// Slots is the horizon (default 1200).
	Slots int
	// Period is the slot count between mean rotations (default 150).
	Period int
	// Gamma is the discount factor of the discounted policy (default 0.98).
	Gamma float64
	// Seed drives everything.
	Seed int64
}

func (c *ShiftConfig) fill() {
	if c.N == 0 {
		c.N = 15
	}
	if c.M == 0 {
		c.M = 3
	}
	if c.Slots == 0 {
		c.Slots = 1200
	}
	if c.Period == 0 {
		c.Period = 150
	}
	if c.Gamma == 0 {
		c.Gamma = 0.98
	}
}

// ShiftSeries is one policy's running-average throughput on the shifting
// channel.
type ShiftSeries struct {
	Name    string
	AvgKbps []float64 // running average per slot
}

// ShiftResult bundles the extension experiment output.
type ShiftResult struct {
	Period int
	Series []ShiftSeries
}

// RunShift runs the non-stationary extension experiment: channels whose
// per-node means rotate every Period slots, learned by the vanilla ZhouLi
// rule and by its discounted variant. The discounted policy's running
// average recovers after each rotation; the vanilla one decays.
func RunShift(cfg ShiftConfig) (*ShiftResult, error) {
	cfg.fill()
	root := rng.New(cfg.Seed).Split("shift-exp")
	nw, err := topology.Random(topology.RandomConfig{
		N:                cfg.N,
		RequireConnected: true,
	}, root.Split("topology"))
	if err != nil {
		return nil, err
	}
	res := &ShiftResult{Period: cfg.Period}
	type entry struct {
		name string
		mk   func() (policy.Policy, error)
	}
	entries := []entry{
		{"Algorithm2", func() (policy.Policy, error) { return policy.NewZhouLi(cfg.N * cfg.M) }},
		{"Discounted", func() (policy.Policy, error) {
			return policy.NewDiscountedZhouLi(cfg.N*cfg.M, cfg.Gamma)
		}},
	}
	for _, e := range entries {
		ch, err := channel.NewShifting(channel.ShiftConfig{
			N: cfg.N, M: cfg.M, Period: cfg.Period,
		}, root.Split("channels-"+e.name))
		if err != nil {
			return nil, err
		}
		pol, err := e.mk()
		if err != nil {
			return nil, err
		}
		scheme, err := core.New(core.Config{Net: nw, Channels: ch, M: cfg.M, Policy: pol})
		if err != nil {
			return nil, err
		}
		results, err := scheme.Run(cfg.Slots)
		if err != nil {
			return nil, err
		}
		series := ShiftSeries{Name: e.name, AvgKbps: make([]float64, len(results))}
		sum := 0.0
		for i, r := range results {
			sum += r.ObservedKbps
			series.AvgKbps[i] = sum / float64(i+1)
		}
		res.Series = append(res.Series, series)
	}
	return res, nil
}

// RenderShift prints the extension experiment as a sampled table.
func RenderShift(res *ShiftResult, samples int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension — non-stationary channels (means rotate every %d slots)\n", res.Period)
	if len(res.Series) == 0 {
		return b.String()
	}
	n := len(res.Series[0].AvgKbps)
	samples = clampSamples(samples, n)
	fmt.Fprintf(&b, "%10s", "slot")
	for _, s := range res.Series {
		fmt.Fprintf(&b, " %12s", s.Name)
	}
	b.WriteString("\n")
	for i := 0; i < samples; i++ {
		idx := (i+1)*n/samples - 1
		fmt.Fprintf(&b, "%10d", idx+1)
		for _, s := range res.Series {
			fmt.Fprintf(&b, " %12.1f", s.AvgKbps[idx])
		}
		b.WriteString("\n")
	}
	return b.String()
}
