package sim

import (
	"fmt"
	"strings"

	"multihopbandit/internal/channel"
	"multihopbandit/internal/core"
	"multihopbandit/internal/engine"
	"multihopbandit/internal/extgraph"
	"multihopbandit/internal/mwis"
	"multihopbandit/internal/policy"
	"multihopbandit/internal/protocol"
	"multihopbandit/internal/rng"
)

// AblationConfig parameterizes the single-decision ablations (r, D, solver).
type AblationConfig struct {
	// N, M are the network dimensions (defaults 60, 5).
	N, M int
	// Seed drives topology and weights.
	Seed int64
	// Workers bounds concurrent sweep points (default GOMAXPROCS).
	Workers int
	// Cache optionally shares the instance across sweeps; the r, D and
	// solver ablations all run on the same cached topology and weights.
	Cache *engine.ArtifactCache
}

func (c *AblationConfig) fill() {
	if c.N == 0 {
		c.N = 60
	}
	if c.M == 0 {
		c.M = 5
	}
}

// ablationInstance keys the shared ablation instance; the stream derivation
// matches the historical code ("ablation" root, "channels" means).
func (c *AblationConfig) ablationInstance() engine.InstanceConfig {
	return engine.InstanceConfig{
		N:           c.N,
		M:           c.M,
		Seed:        c.Seed,
		Stream:      "ablation",
		MeansStream: "channels",
	}
}

// AblationPoint is one parameter setting's outcome.
type AblationPoint struct {
	// Label identifies the setting ("r=2", "D=4", "greedy", ...).
	Label string
	// WeightKbps is the committed decision weight.
	WeightKbps float64
	// MiniRounds executed.
	MiniRounds int
	// MaxMessages is the largest per-vertex relay count.
	MaxMessages int
	// MiniTimeslots consumed by the decision.
	MiniTimeslots int
}

func runDecision(ext *extgraph.Extended, w []float64, r, d int, solver mwis.Solver, label string) (AblationPoint, error) {
	rt, err := protocol.New(protocol.Config{Ext: ext, R: r, D: d, Solver: solver})
	if err != nil {
		return AblationPoint{}, err
	}
	res, err := rt.Decide(w, nil)
	if err != nil {
		return AblationPoint{}, err
	}
	weight := 0.0
	if len(res.WeightByMiniRound) > 0 {
		weight = res.WeightByMiniRound[len(res.WeightByMiniRound)-1]
	}
	return AblationPoint{
		Label:         label,
		WeightKbps:    channel.Kbps(weight),
		MiniRounds:    res.MiniRounds,
		MaxMessages:   res.Stats.MaxMessages(),
		MiniTimeslots: res.Stats.MiniTimeslots,
	}, nil
}

// sweepPoint is one parameter setting of an ablation sweep.
type sweepPoint struct {
	label  string
	r, d   int
	solver mwis.Solver
}

// runAblationSweep executes one decision per sweep point as parallel engine
// jobs over the shared cached instance, returning points in sweep order.
func runAblationSweep(cfg AblationConfig, name string, points []sweepPoint) ([]AblationPoint, error) {
	cfg.fill()
	runner := engine.NewRunner(engine.Config{
		Workers: cfg.Workers, Seed: cfg.Seed, Cache: cfg.Cache,
	})
	jobs := make([]engine.Job[AblationPoint], len(points))
	for i, pt := range points {
		pt := pt
		jobs[i] = engine.Job[AblationPoint]{
			ID: engine.CellID(name, fmt.Sprintf("%s#%d", pt.label, i), cfg.Seed),
			Run: func(ctx *engine.Ctx) (AblationPoint, error) {
				inst, err := ctx.Cache.Instance(cfg.ablationInstance())
				if err != nil {
					return AblationPoint{}, err
				}
				return runDecision(inst.Ext, inst.Means, pt.r, pt.d, pt.solver, pt.label)
			},
		}
	}
	return engine.Run(runner, jobs)
}

// RunAblationR sweeps the ball parameter r ∈ {1, 2, 3} on one decision.
func RunAblationR(cfg AblationConfig) ([]AblationPoint, error) {
	var points []sweepPoint
	for _, r := range []int{1, 2, 3} {
		points = append(points, sweepPoint{label: fmt.Sprintf("r=%d", r), r: r, d: 4})
	}
	return runAblationSweep(cfg, "ablation-r", points)
}

// RunAblationD sweeps the mini-round cap D ∈ {1, 2, 4, 8, unbounded}.
func RunAblationD(cfg AblationConfig) ([]AblationPoint, error) {
	var points []sweepPoint
	for _, d := range []int{1, 2, 4, 8, 0} {
		label := fmt.Sprintf("D=%d", d)
		if d == 0 {
			label = "D=∞"
		}
		points = append(points, sweepPoint{label: label, r: 2, d: d})
	}
	return runAblationSweep(cfg, "ablation-d", points)
}

// RunAblationSolver compares the LocalLeaders' local MWIS solver.
func RunAblationSolver(cfg AblationConfig) ([]AblationPoint, error) {
	var points []sweepPoint
	for _, solver := range []mwis.Solver{mwis.Greedy{}, mwis.Hybrid{}, mwis.Exact{Budget: 500000}} {
		points = append(points, sweepPoint{label: solver.Name(), r: 2, d: 4, solver: solver})
	}
	return runAblationSweep(cfg, "ablation-solver", points)
}

// RenderAblation prints ablation points as an aligned table.
func RenderAblation(title string, points []AblationPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%12s %12s %11s %9s %14s\n",
		"setting", "weight_kbps", "mini-rounds", "max-msgs", "mini-timeslots")
	for _, p := range points {
		fmt.Fprintf(&b, "%12s %12.0f %11d %9d %14d\n",
			p.Label, p.WeightKbps, p.MiniRounds, p.MaxMessages, p.MiniTimeslots)
	}
	return b.String()
}

// ShiftConfig parameterizes the non-stationary extension experiment (the
// paper's future-work adversarial setting).
type ShiftConfig struct {
	// N, M are the network dimensions (defaults 15, 3).
	N, M int
	// Slots is the horizon (default 1200).
	Slots int
	// Period is the slot count between mean rotations (default 150).
	Period int
	// Gamma is the discount factor of the discounted policy (default 0.98).
	Gamma float64
	// Seed drives everything.
	Seed int64
	// Workers bounds concurrent policy jobs (default GOMAXPROCS).
	Workers int
	// Cache optionally shares the topology with other experiments.
	Cache *engine.ArtifactCache
}

func (c *ShiftConfig) fill() {
	if c.N == 0 {
		c.N = 15
	}
	if c.M == 0 {
		c.M = 3
	}
	if c.Slots == 0 {
		c.Slots = 1200
	}
	if c.Period == 0 {
		c.Period = 150
	}
	if c.Gamma == 0 {
		c.Gamma = 0.98
	}
}

// ShiftSeries is one policy's running-average throughput on the shifting
// channel.
type ShiftSeries struct {
	Name    string
	AvgKbps []float64 // running average per slot
}

// ShiftResult bundles the extension experiment output.
type ShiftResult struct {
	Period int
	Series []ShiftSeries
}

// RunShift runs the non-stationary extension experiment: channels whose
// per-node means rotate every Period slots, learned by the vanilla ZhouLi
// rule and by its discounted variant, one engine job per policy. The
// discounted policy's running average recovers after each rotation; the
// vanilla one decays.
func RunShift(cfg ShiftConfig) (*ShiftResult, error) {
	cfg.fill()
	runner := engine.NewRunner(engine.Config{
		Workers: cfg.Workers, Seed: cfg.Seed, Cache: cfg.Cache,
	})
	inst, err := runner.Cache().Instance(engine.InstanceConfig{
		N:                cfg.N,
		M:                cfg.M,
		RequireConnected: true,
		Seed:             cfg.Seed,
		Stream:           "shift-exp",
		// The shift experiment brings its own (shifting) channel model and
		// core.New builds H itself, so only the topology is shared.
		TopologyOnly: true,
	})
	if err != nil {
		return nil, err
	}
	type entry struct {
		name string
		mk   func() (policy.Policy, error)
	}
	entries := []entry{
		{"Algorithm2", func() (policy.Policy, error) { return policy.NewZhouLi(cfg.N * cfg.M) }},
		{"Discounted", func() (policy.Policy, error) {
			return policy.NewDiscountedZhouLi(cfg.N*cfg.M, cfg.Gamma)
		}},
	}
	jobs := make([]engine.Job[ShiftSeries], len(entries))
	for i, e := range entries {
		e := e
		jobs[i] = engine.Job[ShiftSeries]{
			ID: engine.CellID("shift", fmt.Sprintf("%s#%d", e.name, i), cfg.Seed),
			Run: func(*engine.Ctx) (ShiftSeries, error) {
				return runShiftEntry(cfg, inst, e.name, e.mk)
			},
		}
	}
	series, err := engine.Run(runner, jobs)
	if err != nil {
		return nil, err
	}
	return &ShiftResult{Period: cfg.Period, Series: series}, nil
}

func runShiftEntry(cfg ShiftConfig, inst *engine.Instance, name string, mk func() (policy.Policy, error)) (ShiftSeries, error) {
	root := rng.New(cfg.Seed).Split("shift-exp")
	ch, err := channel.NewShifting(channel.ShiftConfig{
		N: cfg.N, M: cfg.M, Period: cfg.Period,
	}, root.Split("channels-"+name))
	if err != nil {
		return ShiftSeries{}, err
	}
	pol, err := mk()
	if err != nil {
		return ShiftSeries{}, err
	}
	scheme, err := core.New(core.Config{Net: inst.Net, Channels: ch, M: cfg.M, Policy: pol})
	if err != nil {
		return ShiftSeries{}, err
	}
	// Stream the per-slot kbps series off the kernel; only the running
	// average survives.
	rec := core.NewKbpsRecorder(cfg.Slots)
	if err := scheme.RunObserved(cfg.Slots, rec); err != nil {
		return ShiftSeries{}, err
	}
	series := ShiftSeries{Name: name, AvgKbps: make([]float64, len(rec.Series))}
	sum := 0.0
	for i, x := range rec.Series {
		sum += x
		series.AvgKbps[i] = sum / float64(i+1)
	}
	return series, nil
}

// RenderShift prints the extension experiment as a sampled table.
func RenderShift(res *ShiftResult, samples int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension — non-stationary channels (means rotate every %d slots)\n", res.Period)
	if len(res.Series) == 0 {
		return b.String()
	}
	n := len(res.Series[0].AvgKbps)
	samples = clampSamples(samples, n)
	fmt.Fprintf(&b, "%10s", "slot")
	for _, s := range res.Series {
		fmt.Fprintf(&b, " %12s", s.Name)
	}
	b.WriteString("\n")
	for i := 0; i < samples; i++ {
		idx := (i+1)*n/samples - 1
		fmt.Fprintf(&b, "%10d", idx+1)
		for _, s := range res.Series {
			fmt.Fprintf(&b, " %12.1f", s.AvgKbps[idx])
		}
		b.WriteString("\n")
	}
	return b.String()
}
