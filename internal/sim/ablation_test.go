package sim

import (
	"strings"
	"testing"
)

func TestRunAblationR(t *testing.T) {
	points, err := RunAblationR(AblationConfig{Seed: 1, N: 40, M: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("got %d points", len(points))
	}
	// Larger r must not reduce committed weight on this instance family
	// (bigger local views see strictly more of the problem); allow tiny
	// slack for boundary effects.
	for i := 1; i < len(points); i++ {
		if points[i].WeightKbps < points[i-1].WeightKbps*0.9 {
			t.Fatalf("weight dropped sharply from %s (%v) to %s (%v)",
				points[i-1].Label, points[i-1].WeightKbps,
				points[i].Label, points[i].WeightKbps)
		}
	}
	// The decision's time cost grows with r: the WB window alone is
	// (2r+1)² mini-timeslots. (Per-vertex message counts can go either
	// way — larger balls mean fewer leaders.)
	if points[2].MiniTimeslots <= points[0].MiniTimeslots {
		t.Fatalf("r=3 consumed %d mini-timeslots, r=1 %d; expected growth",
			points[2].MiniTimeslots, points[0].MiniTimeslots)
	}
}

func TestRunAblationD(t *testing.T) {
	points, err := RunAblationD(AblationConfig{Seed: 2, N: 40, M: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 5 {
		t.Fatalf("got %d points", len(points))
	}
	// Weight is non-decreasing in D, and D=∞ attains the maximum.
	for i := 1; i < len(points); i++ {
		if points[i].WeightKbps < points[i-1].WeightKbps-1e-9 {
			t.Fatalf("weight not monotone in D: %v after %v",
				points[i].WeightKbps, points[i-1].WeightKbps)
		}
	}
	if points[0].MiniRounds != 1 {
		t.Fatalf("D=1 executed %d mini-rounds", points[0].MiniRounds)
	}
}

func TestRunAblationSolver(t *testing.T) {
	points, err := RunAblationSolver(AblationConfig{Seed: 3, N: 40, M: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("got %d points", len(points))
	}
	byName := map[string]AblationPoint{}
	for _, p := range points {
		byName[p.Label] = p
	}
	// Hybrid and exact must not lose to greedy on decision weight.
	if byName["hybrid"].WeightKbps < byName["greedy"].WeightKbps-1e-6 {
		t.Fatalf("hybrid %v below greedy %v",
			byName["hybrid"].WeightKbps, byName["greedy"].WeightKbps)
	}
	if byName["exact"].WeightKbps < byName["greedy"].WeightKbps-1e-6 {
		t.Fatalf("exact %v below greedy %v",
			byName["exact"].WeightKbps, byName["greedy"].WeightKbps)
	}
}

func TestRenderAblation(t *testing.T) {
	points, err := RunAblationD(AblationConfig{Seed: 4, N: 30, M: 3})
	if err != nil {
		t.Fatal(err)
	}
	out := RenderAblation("D sweep", points)
	if !strings.Contains(out, "D sweep") || !strings.Contains(out, "D=4") {
		t.Fatalf("render output missing content:\n%s", out)
	}
	if len(strings.Split(strings.TrimSpace(out), "\n")) != 2+len(points) {
		t.Fatalf("unexpected line count:\n%s", out)
	}
}

func TestRunShiftDiscountedWins(t *testing.T) {
	res, err := RunShift(ShiftConfig{Seed: 5, N: 12, M: 3, Slots: 900, Period: 120})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 2 {
		t.Fatalf("got %d series", len(res.Series))
	}
	var vanilla, discounted ShiftSeries
	for _, s := range res.Series {
		switch s.Name {
		case "Algorithm2":
			vanilla = s
		case "Discounted":
			discounted = s
		}
	}
	last := len(vanilla.AvgKbps) - 1
	if discounted.AvgKbps[last] <= vanilla.AvgKbps[last] {
		t.Fatalf("discounted %v did not beat vanilla %v on shifting channels",
			discounted.AvgKbps[last], vanilla.AvgKbps[last])
	}
}

func TestRenderShift(t *testing.T) {
	res, err := RunShift(ShiftConfig{Seed: 6, N: 10, M: 2, Slots: 200, Period: 50})
	if err != nil {
		t.Fatal(err)
	}
	out := RenderShift(res, 5)
	if !strings.Contains(out, "Discounted") || !strings.Contains(out, "rotate every 50") {
		t.Fatalf("render output missing content:\n%s", out)
	}
}

func TestRenderFunctionsProduceTables(t *testing.T) {
	series, err := RunFig6(Fig6Config{Seed: 1, Sizes: []Size{{20, 3}}})
	if err != nil {
		t.Fatal(err)
	}
	if out := RenderFig6(series); !strings.Contains(out, "20x3") {
		t.Fatalf("RenderFig6 output:\n%s", out)
	}
	f7, err := RunFig7(Fig7Config{Seed: 1, Slots: 60})
	if err != nil {
		t.Fatal(err)
	}
	if out := RenderFig7(f7, 5); !strings.Contains(out, "Algorithm2") {
		t.Fatalf("RenderFig7 output:\n%s", out)
	}
	f8, err := RunFig8(Fig8Config{Seed: 1, N: 12, M: 3, Periods: 5, Ys: []int{2}})
	if err != nil {
		t.Fatal(err)
	}
	if out := RenderFig8(f8, 3); !strings.Contains(out, "y=2") {
		t.Fatalf("RenderFig8 output:\n%s", out)
	}
}
