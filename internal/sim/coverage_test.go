package sim

import (
	"strings"
	"testing"

	"multihopbandit/internal/channel"
	"multihopbandit/internal/extgraph"
	"multihopbandit/internal/rng"
	"multihopbandit/internal/timing"
	"multihopbandit/internal/topology"
)

func TestRenderTable2Content(t *testing.T) {
	out := RenderTable2(timing.Paper())
	for _, want := range []string{"2s", "250ms", "θ = t_d/t_a = 0.500", "y=20→0.975"} {
		if !strings.Contains(out, want) {
			t.Fatalf("RenderTable2 missing %q:\n%s", want, out)
		}
	}
}

func TestBuildPolicyAllKinds(t *testing.T) {
	nw, err := topology.Random(topology.RandomConfig{N: 6}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	ext, err := extgraph.Build(nw.G, 2)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := channel.NewModel(channel.Config{N: 6, M: 2}, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	kinds := []PolicyKind{PolicyZhouLi, PolicyLLR, PolicyEpsGreedy, PolicyOracle, PolicyCUCB}
	for _, kind := range kinds {
		pol, err := buildPolicy(kind, ext, ch, rng.New(3))
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if len(pol.Indices()) != ext.K() {
			t.Fatalf("%s: wrong index count", kind)
		}
	}
	if _, err := buildPolicy(PolicyKind(99), ext, ch, rng.New(3)); err == nil {
		t.Fatal("expected error for unknown policy kind")
	}
}

func TestAblationDefaultsFill(t *testing.T) {
	// Zero-value configs get the documented defaults.
	cfg := AblationConfig{}
	cfg.fill()
	if cfg.N != 60 || cfg.M != 5 {
		t.Fatalf("ablation defaults = %+v", cfg)
	}
	sc := ShiftConfig{}
	sc.fill()
	if sc.N != 15 || sc.M != 3 || sc.Slots != 1200 || sc.Period != 150 || sc.Gamma != 0.98 {
		t.Fatalf("shift defaults = %+v", sc)
	}
}

func TestRunFig6CustomMiniRounds(t *testing.T) {
	series, err := RunFig6(Fig6Config{Seed: 3, Sizes: []Size{{15, 2}}, MiniRounds: 4, R: 1, TargetDegree: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(series[0].WeightKbps) != 4 {
		t.Fatalf("series length = %d, want 4", len(series[0].WeightKbps))
	}
}

func TestRenderFig7SampleClamping(t *testing.T) {
	res, err := RunFig7(Fig7Config{Seed: 2, Slots: 30, N: 8, M: 2})
	if err != nil {
		t.Fatal(err)
	}
	// samples > horizon falls back to 10.
	out := RenderFig7(res, 500)
	if !strings.Contains(out, "Algorithm2") {
		t.Fatalf("render output:\n%s", out)
	}
	// Empty result renders just the header.
	empty := RenderFig7(&Fig7Result{OptimalKbps: 1, Beta: 2, Theta: 0.5}, 5)
	if !strings.Contains(empty, "Fig. 7") {
		t.Fatalf("empty render:\n%s", empty)
	}
}

func TestRenderFig6Empty(t *testing.T) {
	out := RenderFig6(nil)
	if !strings.Contains(out, "mini-round") {
		t.Fatalf("empty Fig6 render:\n%s", out)
	}
}

func TestRenderShiftEmpty(t *testing.T) {
	out := RenderShift(&ShiftResult{Period: 9}, 3)
	if !strings.Contains(out, "rotate every 9") {
		t.Fatalf("empty shift render:\n%s", out)
	}
}

func TestRenderFig8SampleClamping(t *testing.T) {
	subs, err := RunFig8(Fig8Config{Seed: 4, N: 10, M: 2, Periods: 3, Ys: []int{1}})
	if err != nil {
		t.Fatal(err)
	}
	out := RenderFig8(subs, 100) // clamps to 10 then to n
	if !strings.Contains(out, "y=1") {
		t.Fatalf("render output:\n%s", out)
	}
}
