package sim

import (
	"fmt"
	"strings"

	"multihopbandit/internal/timing"
)

// RenderTable2 prints the Table II time model and its derived quantities.
func RenderTable2(p timing.Params) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table II — simulation time parameters\n")
	fmt.Fprintf(&b, "  round t_a               %v\n", p.Round)
	fmt.Fprintf(&b, "  local broadcast t_b     %v\n", p.LocalBroadcast)
	fmt.Fprintf(&b, "  local computation t_l   %v\n", p.LocalCompute)
	fmt.Fprintf(&b, "  data transmission t_d   %v\n", p.DataTransmission)
	fmt.Fprintf(&b, "  derived: mini-round t_m = 2·t_b+t_l = %v\n", p.MiniRound())
	fmt.Fprintf(&b, "  derived: decision t_s = %d·t_m = %v\n", p.DecisionMiniRounds, p.Decision())
	fmt.Fprintf(&b, "  derived: θ = t_d/t_a = %.3f\n", p.Theta())
	fmt.Fprintf(&b, "  effective fraction by update period y: ")
	for i, y := range []int{1, 5, 10, 20} {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "y=%d→%.3f", y, p.EffectiveFraction(y))
	}
	b.WriteString("\n")
	return b.String()
}

// RenderFig6 prints the Fig. 6 series as an aligned table: one column per
// network size, one row per mini-round.
func RenderFig6(series []Fig6Series) string {
	var b strings.Builder
	b.WriteString("Fig. 6 — summed weight (kbps) of output ISs by mini-round\n")
	b.WriteString("mini-round")
	for _, s := range series {
		fmt.Fprintf(&b, " %10s", fmt.Sprintf("%dx%d", s.Size.N, s.Size.M))
	}
	b.WriteString("\n")
	if len(series) == 0 {
		return b.String()
	}
	rounds := len(series[0].WeightKbps)
	for tau := 0; tau < rounds; tau++ {
		fmt.Fprintf(&b, "%10d", tau+1)
		for _, s := range series {
			fmt.Fprintf(&b, " %10.0f", s.WeightKbps[tau])
		}
		b.WriteString("\n")
	}
	b.WriteString("converged ")
	for _, s := range series {
		fmt.Fprintf(&b, " %10d", s.Converged)
	}
	b.WriteString("\n")
	return b.String()
}

// RenderFig7 prints Fig. 7(a) and 7(b) as tables sampled at regular
// intervals, plus a summary line per policy.
func RenderFig7(res *Fig7Result, samples int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 7 — practical regret vs LLR (R1 = %.1f kbps, θ = %.2f, β = %.2f)\n",
		res.OptimalKbps, res.Theta, res.Beta)
	if len(res.Policies) == 0 {
		return b.String()
	}
	n := len(res.Policies[0].PracticalRegret)
	samples = clampSamples(samples, n)
	b.WriteString("(a) practical regret\n  time-slot")
	for _, p := range res.Policies {
		fmt.Fprintf(&b, " %12s", p.Policy)
	}
	b.WriteString("\n")
	for i := 0; i < samples; i++ {
		idx := (i+1)*n/samples - 1
		fmt.Fprintf(&b, "  %9d", idx+1)
		for _, p := range res.Policies {
			fmt.Fprintf(&b, " %12.1f", p.PracticalRegret[idx])
		}
		b.WriteString("\n")
	}
	b.WriteString("(b) practical β-regret\n  time-slot")
	for _, p := range res.Policies {
		fmt.Fprintf(&b, " %12s", p.Policy)
	}
	b.WriteString("\n")
	for i := 0; i < samples; i++ {
		idx := (i+1)*n/samples - 1
		fmt.Fprintf(&b, "  %9d", idx+1)
		for _, p := range res.Policies {
			fmt.Fprintf(&b, " %12.1f", p.PracticalBetaRegret[idx])
		}
		b.WriteString("\n")
	}
	b.WriteString("summary: ")
	for i, p := range res.Policies {
		if i > 0 {
			b.WriteString("; ")
		}
		fmt.Fprintf(&b, "%s avg observed %.1f kbps", p.Policy, p.AvgThroughputKbps)
	}
	b.WriteString("\n")
	return b.String()
}

// clampSamples bounds a requested table-row count to [1, n] with a default
// of 10 (or n when the series is shorter).
func clampSamples(samples, n int) int {
	if samples <= 0 {
		samples = 10
	}
	if samples > n {
		samples = n
	}
	return samples
}

// RenderScenario prints one spec-driven scenario run: the canonical
// scenario shape, the observed-throughput trajectory sampled at regular
// intervals, and a summary line.
func RenderScenario(res *ScenarioResult, samples int) string {
	var b strings.Builder
	s := res.Spec
	fmt.Fprintf(&b, "Scenario (spec v%d) — %s topology N=%d, %s channels M=%d, policy %s, y=%d, seed %d/%d\n",
		s.V, s.Topology.Kind, s.Topology.N, s.Channel.Kind, s.Channel.M,
		s.Policy.Kind, s.Decision.UpdateEvery, s.Seed, s.NoiseSeed)
	n := len(res.SeriesKbps)
	rows := clampSamples(samples, n)
	b.WriteString("  time-slot interval avg kbps  overall avg kbps\n")
	prev := 0
	running := 0.0
	for i := 0; i < rows; i++ {
		idx := (i + 1) * n / rows
		interval := 0.0
		for _, x := range res.SeriesKbps[prev:idx] {
			interval += x
			running += x
		}
		fmt.Fprintf(&b, "  %9d %17.1f %17.1f\n",
			idx, interval/float64(idx-prev), running/float64(idx))
		prev = idx
	}
	fmt.Fprintf(&b, "summary: %d slots, %d MWIS decisions, avg observed %.1f kbps\n",
		n, res.Decisions, res.AvgKbps)
	return b.String()
}

// RenderFig8 prints each subplot of Fig. 8 with estimated vs actual running
// averages sampled at regular intervals.
func RenderFig8(subs []Fig8Subplot, samples int) string {
	var b strings.Builder
	b.WriteString("Fig. 8 — estimated vs actual average effective throughput (kbps)\n")
	for _, sub := range subs {
		fmt.Fprintf(&b, "(y=%d slots per period, %d slots total)\n", sub.Y, sub.Slots)
		n := 0
		if len(sub.Series) > 0 {
			n = len(sub.Series[0].ActualAvg)
		}
		s := clampSamples(samples, n)
		b.WriteString("     period")
		for _, ser := range sub.Series {
			fmt.Fprintf(&b, " %12s-est %12s-act", ser.Policy, ser.Policy)
		}
		b.WriteString("\n")
		for i := 0; i < s; i++ {
			idx := (i+1)*n/s - 1
			fmt.Fprintf(&b, "  %9d", idx+1)
			for _, ser := range sub.Series {
				fmt.Fprintf(&b, " %16.1f %16.1f", ser.EstimatedAvg[idx], ser.ActualAvg[idx])
			}
			b.WriteString("\n")
		}
	}
	return b.String()
}
