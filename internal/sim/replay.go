package sim

import (
	"fmt"

	"multihopbandit/internal/channel"
	"multihopbandit/internal/core"
	"multihopbandit/internal/engine"
	"multihopbandit/internal/protocol"
	"multihopbandit/internal/spec"
	"multihopbandit/internal/wal"
)

// ReplayConfig parameterizes ReplayScenario: a recorded observation stream
// (a persisted instance's WAL, loaded with serve.ReadRecorded) fed back
// through the slot kernel, optionally under a different policy — the
// offline-A/B mode of EXPERIMENTS.md.
type ReplayConfig struct {
	// Spec is the scenario the stream was recorded under (the recorded
	// instance's meta spec). Canonicalized before the run.
	Spec spec.ScenarioSpec
	// Records is the observation stream, ascending by slot and starting at
	// slot 0 (record with persist.keep_log so no segment is collected).
	Records []wal.Record
	// Policy optionally replaces the spec's learning rule: the candidate of
	// an offline A/B. Nil replays under the recorded policy.
	Policy *spec.PolicySpec
	// Slots optionally caps how many records are replayed (0 = all).
	Slots int
	// Cache optionally shares artifacts; nil builds a private one.
	Cache *engine.ArtifactCache
}

// ReplayResult is the outcome of one replay.
type ReplayResult struct {
	// Spec is the canonical spec the replay executed (policy override
	// applied).
	Spec spec.ScenarioSpec `json:"spec"`
	// Slots is the number of replayed records.
	Slots int `json:"slots"`
	// OptimalKbps is the genie-optimal static strategy weight W* of the
	// scenario's artifacts (kbps) — the regret baseline. For dynamic channel
	// kinds it is the static catalog optimum.
	OptimalKbps float64 `json:"optimal_kbps"`
	// AvgObservedKbps is the logged stream's mean realized throughput: a
	// property of the recording, identical across candidate policies.
	AvgObservedKbps float64 `json:"avg_observed_kbps"`
	// AvgDecisionKbps is the mean true value Σ μ(winners) of the replayed
	// policy's own decisions (kbps): what THIS policy would earn in
	// expectation playing its choices — the offline-A/B comparison metric.
	AvgDecisionKbps float64 `json:"avg_decision_kbps"`
	// RegretKbps is the cumulative decision regret Σ (W* − Σ μ(winners))
	// over the replay (kbps); RegretSeriesKbps is its per-slot prefix sum.
	RegretKbps       float64   `json:"regret_kbps"`
	RegretSeriesKbps []float64 `json:"regret_series_kbps,omitempty"`
	// Decisions and DecideStats are the decision plane's accounting.
	Decisions   int64                `json:"decisions"`
	DecideStats protocol.DecideStats `json:"decide_stats"`
}

// replayScorer scores each replayed slot against the true catalog means:
// exact expected values, no estimation noise — valid offline because the
// environment is fully determined by the spec.
type replayScorer struct {
	means       []float64
	opt         float64 // W*, normalized
	cumRegret   float64
	cumObserved float64
	cumDecision float64
	series      []float64
}

func (r *replayScorer) OnSlot(v *core.SlotView) {
	val := 0.0
	for _, w := range v.Winners {
		val += r.means[w]
	}
	r.cumDecision += val
	r.cumRegret += r.opt - val
	r.cumObserved += v.Observed
	r.series = append(r.series, channel.Kbps(r.cumRegret))
}

// ReplayScenario feeds a recorded observation stream through the slot
// kernel: each record's (played, rewards) batch updates the estimator
// off-policy, while the kernel's own strategy decisions — the recorded
// policy's, or the override's — are scored exactly against the true catalog
// means and the cached brute-force optimum. Replaying a recording under its
// own spec reproduces the recorded learner trajectory bit-identically (the
// same StepExternal path recovery uses); replaying under a policy override
// answers "what would policy B have decided, fed A's data?" without
// touching production.
func ReplayScenario(cfg ReplayConfig) (*ReplayResult, error) {
	if len(cfg.Records) == 0 {
		return nil, fmt.Errorf("sim: replay needs a recorded stream")
	}
	canon, err := cfg.Spec.Canonical()
	if err != nil {
		return nil, err
	}
	if cfg.Policy != nil {
		canon.Policy = *cfg.Policy
		if canon, err = canon.Canonical(); err != nil {
			return nil, fmt.Errorf("sim: replay policy override: %w", err)
		}
	}
	cache := cfg.Cache
	if cache == nil {
		cache = engine.NewArtifactCache()
	}
	inst, err := cache.Scenario(canon)
	if err != nil {
		return nil, fmt.Errorf("sim: replay artifacts: %w", err)
	}
	rt, err := inst.Runtime(canon.Decision.R, canon.Decision.D)
	if err != nil {
		return nil, err
	}
	pol, err := spec.BuildPolicy(canon.Policy, inst.Ext.K(), inst.Ext.N,
		inst.Means, spec.PolicyStream(canon.NoiseSeed))
	if err != nil {
		return nil, err
	}
	// No sampler: the recorded stream is the environment.
	loop, err := core.NewLoop(core.LoopConfig{
		Ext:         inst.Ext,
		Runtime:     rt,
		Policy:      pol,
		UpdateEvery: canon.Decision.UpdateEvery,
	})
	if err != nil {
		return nil, err
	}
	opt, err := inst.Optimal()
	if err != nil {
		return nil, fmt.Errorf("sim: replay optimum: %w", err)
	}

	n := len(cfg.Records)
	if cfg.Slots > 0 && cfg.Slots < n {
		n = cfg.Slots
	}
	scorer := &replayScorer{means: inst.Means, opt: opt, series: make([]float64, 0, n)}
	for i := 0; i < n; i++ {
		rec := cfg.Records[i]
		if rec.Slot != loop.Slot() {
			return nil, fmt.Errorf("sim: replay record %d is slot %d, expected %d (stream must be contiguous from 0 — record with persist.keep_log)", i, rec.Slot, loop.Slot())
		}
		if err := loop.StepExternal(rec.Played, rec.Rewards, scorer); err != nil {
			return nil, fmt.Errorf("sim: replay slot %d: %w", rec.Slot, err)
		}
	}
	return &ReplayResult{
		Spec:             canon,
		Slots:            n,
		OptimalKbps:      channel.Kbps(opt),
		AvgObservedKbps:  channel.Kbps(scorer.cumObserved / float64(n)),
		AvgDecisionKbps:  channel.Kbps(scorer.cumDecision / float64(n)),
		RegretKbps:       channel.Kbps(scorer.cumRegret),
		RegretSeriesKbps: scorer.series,
		Decisions:        loop.Decisions(),
		DecideStats:      loop.DecideStats(),
	}, nil
}
