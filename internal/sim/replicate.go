package sim

import (
	"fmt"
	"math"

	"multihopbandit/internal/engine"
)

// ReplicateConfig controls multi-seed experiment replication.
type ReplicateConfig struct {
	// Seeds are the root seeds, one replication each. Required.
	Seeds []int64
	// Workers bounds concurrent replications (default GOMAXPROCS, capped
	// at the seed count).
	Workers int
}

// Replicate runs one experiment per seed on the engine's worker pool and
// returns the results in seed order. Experiments must be independent given
// their seed (every runner in this package is), so parallel execution is
// deterministic. Every replication runs to completion even when one fails —
// replications are cheap enough that draining beats cancellation plumbing —
// and all failures are collected into the returned error.
func Replicate[T any](cfg ReplicateConfig, run func(seed int64) (T, error)) ([]T, error) {
	if len(cfg.Seeds) == 0 {
		return nil, fmt.Errorf("sim: no seeds to replicate")
	}
	runner := engine.NewRunner(engine.Config{Workers: cfg.Workers})
	jobs := make([]engine.Job[T], len(cfg.Seeds))
	for i, seed := range cfg.Seeds {
		seed := seed
		jobs[i] = engine.Job[T]{
			ID: fmt.Sprintf("replicate/%d/seed=%d", i, seed),
			Run: func(*engine.Ctx) (T, error) {
				out, err := run(seed)
				if err != nil {
					err = fmt.Errorf("sim: replication seed %d: %w", seed, err)
				}
				return out, err
			},
		}
	}
	return engine.Run(runner, jobs)
}

// SeedRange returns n consecutive seeds starting at base — a convenience
// for ReplicateConfig.
func SeedRange(base int64, n int) []int64 {
	seeds := make([]int64, n)
	for i := range seeds {
		seeds[i] = base + int64(i)
	}
	return seeds
}

// Summary holds basic statistics of a sample.
type Summary struct {
	N    int
	Mean float64
	// Std is the sample standard deviation (n−1 denominator).
	Std float64
	// CI95 is the half-width of the normal-approximation 95% confidence
	// interval for the mean.
	CI95 float64
	Min  float64
	Max  float64
}

// Summarize computes summary statistics of xs. An empty sample yields a
// zero Summary.
func Summarize(xs []float64) Summary {
	n := len(xs)
	if n == 0 {
		return Summary{}
	}
	s := Summary{N: n, Min: xs[0], Max: xs[0]}
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(n)
	if n > 1 {
		ss := 0.0
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(n-1))
		s.CI95 = 1.96 * s.Std / math.Sqrt(float64(n))
	}
	return s
}

// Fig7Replicated aggregates the Fig. 7 experiment over many seeds.
type Fig7Replicated struct {
	// Seeds used.
	Seeds []int64
	// FinalRegret maps policy name to the summary of the final practical
	// regret across seeds.
	FinalRegret map[string]Summary
	// FinalBetaRegret maps policy name to the summary of the final
	// practical β-regret.
	FinalBetaRegret map[string]Summary
	// Throughput maps policy name to the summary of the average observed
	// throughput (kbps).
	Throughput map[string]Summary
}

// RunFig7Replicated runs the Fig. 7 comparison over multiple seeds and
// summarizes the endpoints, turning the paper's single-instance plot into a
// statistically grounded comparison. All replications share one artifact
// cache, so repeated seeds pay the instance cost once.
func RunFig7Replicated(base Fig7Config, seeds []int64, workers int) (*Fig7Replicated, error) {
	cache := base.Cache
	if cache == nil {
		cache = engine.NewArtifactCache()
	}
	runs, err := Replicate(ReplicateConfig{Seeds: seeds, Workers: workers},
		func(seed int64) (*Fig7Result, error) {
			cfg := base
			cfg.Seed = seed
			cfg.Cache = cache
			// The outer pool already saturates the workers; run each
			// replication's policies serially to avoid oversubscription.
			cfg.Workers = 1
			return RunFig7(cfg)
		})
	if err != nil {
		return nil, err
	}
	out := &Fig7Replicated{
		Seeds:           append([]int64(nil), seeds...),
		FinalRegret:     map[string]Summary{},
		FinalBetaRegret: map[string]Summary{},
		Throughput:      map[string]Summary{},
	}
	perPolicy := map[string][3][]float64{}
	for _, run := range runs {
		for _, p := range run.Policies {
			name := p.Policy.String()
			cur := perPolicy[name]
			cur[0] = append(cur[0], p.PracticalRegret[len(p.PracticalRegret)-1])
			cur[1] = append(cur[1], p.PracticalBetaRegret[len(p.PracticalBetaRegret)-1])
			cur[2] = append(cur[2], p.AvgThroughputKbps)
			perPolicy[name] = cur
		}
	}
	for name, series := range perPolicy {
		out.FinalRegret[name] = Summarize(series[0])
		out.FinalBetaRegret[name] = Summarize(series[1])
		out.Throughput[name] = Summarize(series[2])
	}
	return out, nil
}
