package sim

import (
	"errors"
	"math"
	"sync/atomic"
	"testing"
)

func TestReplicateOrderAndValues(t *testing.T) {
	seeds := SeedRange(100, 8)
	out, err := Replicate(ReplicateConfig{Seeds: seeds, Workers: 3},
		func(seed int64) (int64, error) { return seed * 2, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != seeds[i]*2 {
			t.Fatalf("out[%d] = %d, want %d", i, v, seeds[i]*2)
		}
	}
}

func TestReplicateEmptySeeds(t *testing.T) {
	if _, err := Replicate(ReplicateConfig{}, func(int64) (int, error) { return 0, nil }); err == nil {
		t.Fatal("expected error for no seeds")
	}
}

func TestReplicatePropagatesError(t *testing.T) {
	boom := errors.New("boom")
	_, err := Replicate(ReplicateConfig{Seeds: []int64{1, 2, 3}},
		func(seed int64) (int, error) {
			if seed == 2 {
				return 0, boom
			}
			return 1, nil
		})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
}

func TestReplicateRunsAllDespiteError(t *testing.T) {
	var count atomic.Int64
	_, _ = Replicate(ReplicateConfig{Seeds: SeedRange(0, 6), Workers: 2},
		func(seed int64) (int, error) {
			count.Add(1)
			if seed == 0 {
				return 0, errors.New("first fails")
			}
			return 0, nil
		})
	if count.Load() != 6 {
		t.Fatalf("only %d/6 replications ran", count.Load())
	}
}

func TestReplicateParallelMatchesSerial(t *testing.T) {
	// Determinism: parallel execution yields the same results as serial.
	run := func(seed int64) (float64, error) {
		res, err := RunFig6(Fig6Config{Seed: seed, Sizes: []Size{{15, 2}}})
		if err != nil {
			return 0, err
		}
		return res[0].WeightKbps[9], nil
	}
	seeds := SeedRange(1, 6)
	par, err := Replicate(ReplicateConfig{Seeds: seeds, Workers: 4}, run)
	if err != nil {
		t.Fatal(err)
	}
	ser, err := Replicate(ReplicateConfig{Seeds: seeds, Workers: 1}, run)
	if err != nil {
		t.Fatal(err)
	}
	for i := range par {
		if par[i] != ser[i] {
			t.Fatalf("parallel/serial mismatch at %d: %v vs %v", i, par[i], ser[i])
		}
	}
}

func TestSeedRange(t *testing.T) {
	seeds := SeedRange(5, 3)
	want := []int64{5, 6, 7}
	for i := range want {
		if seeds[i] != want[i] {
			t.Fatalf("seeds = %v", seeds)
		}
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 6, 8})
	if s.N != 4 || s.Mean != 5 || s.Min != 2 || s.Max != 8 {
		t.Fatalf("summary = %+v", s)
	}
	wantStd := math.Sqrt((9 + 1 + 1 + 9) / 3.0)
	if math.Abs(s.Std-wantStd) > 1e-12 {
		t.Fatalf("std = %v, want %v", s.Std, wantStd)
	}
	if math.Abs(s.CI95-1.96*wantStd/2) > 1e-12 {
		t.Fatalf("ci = %v", s.CI95)
	}
}

func TestSummarizeEdgeCases(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
	if s := Summarize([]float64{7}); s.Std != 0 || s.Mean != 7 {
		t.Fatalf("singleton summary = %+v", s)
	}
}

func TestRunFig7Replicated(t *testing.T) {
	rep, err := RunFig7Replicated(Fig7Config{Slots: 120, N: 10, M: 3},
		SeedRange(1, 5), 0)
	if err != nil {
		t.Fatal(err)
	}
	alg2, ok := rep.FinalRegret["Algorithm2"]
	if !ok {
		t.Fatal("missing Algorithm2 summary")
	}
	llr, ok := rep.FinalRegret["LLR"]
	if !ok {
		t.Fatal("missing LLR summary")
	}
	if alg2.N != 5 || llr.N != 5 {
		t.Fatalf("summaries over %d/%d seeds", alg2.N, llr.N)
	}
	// The paper's ordering should hold in the cross-seed mean too.
	if alg2.Mean >= llr.Mean {
		t.Fatalf("mean regret ordering violated: Alg2 %v vs LLR %v", alg2.Mean, llr.Mean)
	}
	if rep.Throughput["Algorithm2"].Mean <= rep.Throughput["LLR"].Mean {
		t.Fatal("mean throughput ordering violated")
	}
}
