package sim

import (
	"fmt"
	"time"

	"multihopbandit/internal/core"
	"multihopbandit/internal/distnet"
	"multihopbandit/internal/engine"
	"multihopbandit/internal/extgraph"
	"multihopbandit/internal/protocol"
	"multihopbandit/internal/spec"
)

// ScenarioConfig parameterizes RunScenario: one declarative scenario run
// over the experiment engine's artifact cache.
type ScenarioConfig struct {
	// Spec is the scenario description; it is canonicalized before the run.
	Spec spec.ScenarioSpec
	// Slots is the horizon in time slots. Required.
	Slots int
	// Cache optionally shares artifacts with other experiments and
	// scenarios; nil builds a private one.
	Cache *engine.ArtifactCache
}

// ScenarioResult is the outcome of one scenario run.
type ScenarioResult struct {
	// Spec is the canonical spec the run executed.
	Spec spec.ScenarioSpec
	// SeriesKbps is the observed throughput of every slot (kbps).
	SeriesKbps []float64
	// AvgKbps is the mean of SeriesKbps.
	AvgKbps float64
	// Decisions is the number of strategy decisions served.
	Decisions int64
	// DecideStats is the decision plane's accounting for the run (full
	// decides vs weight-epoch skips, the per-leader skip taxonomy,
	// communication totals).
	DecideStats protocol.DecideStats
	// Distnet is the concurrent runtime's telemetry when the spec selects
	// execution "distnet" (nil for the lock-step decider).
	Distnet *distnet.Snapshot
}

// buildDistnetDecider assembles the concurrent decision plane a distnet
// spec asks for: transport (chan or loopback TCP), fault layer when any
// fault is configured, runtime, and the core.DecisionPlane adapter. The
// caller owns closing the returned runtime.
func buildDistnetDecider(canon spec.ScenarioSpec, ext *extgraph.Extended, m *distnet.Metrics) (*distnet.LoopDecider, error) {
	var tr distnet.Transport
	switch canon.Decision.Transport {
	case spec.TransportTCP:
		tr = distnet.NewTCPTransport(4)
	default:
		tr = distnet.NewChanTransport()
	}
	f := canon.Decision.Faults
	faultFree := !f.Active()
	if !faultFree {
		seed := f.Seed
		if seed == 0 {
			seed = canon.NoiseSeed
		}
		tr = distnet.NewFaultTransport(tr, distnet.Faults{
			Seed:       seed,
			Loss:       f.Loss,
			BurstEnter: f.BurstEnter,
			BurstExit:  f.BurstExit,
			Latency:    time.Duration(f.LatencyUs) * time.Microsecond,
			Jitter:     time.Duration(f.JitterUs) * time.Microsecond,
			Reorder:    f.Reorder,
		}, m)
	}
	rt, err := distnet.New(distnet.Config{
		Ext:       ext,
		R:         canon.Decision.R,
		D:         canon.Decision.D,
		Transport: tr,
		Metrics:   m,
	})
	if err != nil {
		return nil, fmt.Errorf("sim: distnet runtime: %w", err)
	}
	return distnet.NewLoopDecider(rt, faultFree), nil
}

// RunScenario executes one spec-described scenario for the given horizon,
// streaming the observed-kbps series off the slot kernel. The construction
// path is exactly the serving runtime's (engine cache + spec builders), so
// for equal specs the trajectory is bit-identical to a banditd-hosted
// instance stepping through the same slots — the simulator and the server
// are two drivers of one construction API.
func RunScenario(cfg ScenarioConfig) (*ScenarioResult, error) {
	if cfg.Slots <= 0 {
		return nil, fmt.Errorf("sim: scenario slots must be positive, got %d", cfg.Slots)
	}
	canon, err := cfg.Spec.Canonical()
	if err != nil {
		return nil, err
	}
	cache := cfg.Cache
	if cache == nil {
		cache = engine.NewArtifactCache()
	}
	inst, err := cache.Scenario(canon)
	if err != nil {
		return nil, fmt.Errorf("sim: scenario artifacts: %w", err)
	}
	rt, err := inst.Runtime(canon.Decision.R, canon.Decision.D)
	if err != nil {
		return nil, err
	}
	sampler, err := spec.BuildSampler(canon, inst.Means)
	if err != nil {
		return nil, err
	}
	pol, err := spec.BuildPolicy(canon.Policy, inst.Ext.K(), inst.Ext.N,
		sampler.Means(), spec.PolicyStream(canon.NoiseSeed))
	if err != nil {
		return nil, err
	}
	var decider core.DecisionPlane
	var dm *distnet.Metrics
	if canon.Decision.Execution == spec.ExecutionDistnet {
		dm = &distnet.Metrics{}
		ld, err := buildDistnetDecider(canon, inst.Ext, dm)
		if err != nil {
			return nil, err
		}
		defer ld.Runtime().Close()
		decider = ld
	}
	loop, err := core.NewLoop(core.LoopConfig{
		Ext:         inst.Ext,
		Runtime:     rt,
		Decider:     decider,
		Policy:      pol,
		Sampler:     sampler,
		UpdateEvery: canon.Decision.UpdateEvery,
	})
	if err != nil {
		return nil, err
	}
	rec := core.NewKbpsRecorder(cfg.Slots)
	for i := 0; i < cfg.Slots; i++ {
		if _, err := loop.StepSampled(rec); err != nil {
			return nil, fmt.Errorf("sim: scenario slot %d: %w", i, err)
		}
	}
	avg := 0.0
	for _, x := range rec.Series {
		avg += x
	}
	avg /= float64(cfg.Slots)
	res := &ScenarioResult{
		Spec:        canon,
		SeriesKbps:  rec.Series,
		AvgKbps:     avg,
		Decisions:   loop.Decisions(),
		DecideStats: loop.DecideStats(),
	}
	if dm != nil {
		snap := dm.Snapshot()
		res.Distnet = &snap
	}
	return res, nil
}
