package sim

import (
	"testing"

	"multihopbandit/internal/spec"
)

// TestScenarioDistnetMatchesDecider: a spec that opts into the concurrent
// distnet execution with no faults configured must reproduce the decider
// trajectory bit for bit — execution is operational, not scenario identity.
func TestScenarioDistnetMatchesDecider(t *testing.T) {
	const slots = 120
	base := spec.ScenarioSpec{
		Seed:     31,
		Topology: spec.TopologySpec{N: 10, RequireConnected: true},
		Channel:  spec.ChannelSpec{M: 2},
		Decision: spec.DecisionSpec{UpdateEvery: 3},
	}
	ref, err := RunScenario(ScenarioConfig{Spec: base, Slots: slots})
	if err != nil {
		t.Fatal(err)
	}
	if ref.Distnet != nil {
		t.Fatal("decider run reports distnet telemetry")
	}

	dn := base
	dn.Decision.Execution = spec.ExecutionDistnet
	got, err := RunScenario(ScenarioConfig{Spec: dn, Slots: slots})
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref.SeriesKbps {
		if got.SeriesKbps[i] != ref.SeriesKbps[i] {
			t.Fatalf("slot %d: distnet %v kbps vs decider %v kbps", i, got.SeriesKbps[i], ref.SeriesKbps[i])
		}
	}
	if got.Decisions != ref.Decisions {
		t.Fatalf("decisions %d vs %d", got.Decisions, ref.Decisions)
	}
	if got.DecideStats.FullDecides == 0 {
		t.Fatal("distnet plane reports no full decides")
	}
	if got.DecideStats.EpochSkips != ref.DecideStats.EpochSkips {
		t.Fatalf("epoch skips diverge: distnet %d vs decider %d",
			got.DecideStats.EpochSkips, ref.DecideStats.EpochSkips)
	}
	if got.Distnet == nil || got.Distnet.Decisions == 0 {
		t.Fatalf("distnet telemetry missing or empty: %+v", got.Distnet)
	}
}

// TestScenarioDistnetFaulted: a faulted distnet scenario runs to the
// horizon, reports loss in its telemetry, and is reproducible under the
// same spec.
func TestScenarioDistnetFaulted(t *testing.T) {
	const slots = 60
	s := spec.ScenarioSpec{
		Seed:     32,
		Topology: spec.TopologySpec{N: 10, RequireConnected: true},
		Channel:  spec.ChannelSpec{M: 2},
		Decision: spec.DecisionSpec{
			UpdateEvery: 3,
			Execution:   spec.ExecutionDistnet,
			Faults:      spec.FaultsSpec{Loss: 0.2},
		},
	}
	a, err := RunScenario(ScenarioConfig{Spec: s, Slots: slots})
	if err != nil {
		t.Fatal(err)
	}
	if a.Distnet == nil {
		t.Fatal("no distnet telemetry")
	}
	dropped := int64(0)
	for _, v := range a.Distnet.CopiesDropped {
		dropped += v
	}
	if dropped == 0 {
		t.Fatal("loss=0.2 dropped no copies")
	}
	if a.DecideStats.EpochSkips != 0 {
		t.Fatal("faulted distnet plane must not epoch-skip")
	}
	b, err := RunScenario(ScenarioConfig{Spec: s, Slots: slots})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.SeriesKbps {
		if a.SeriesKbps[i] != b.SeriesKbps[i] {
			t.Fatalf("slot %d: faulted run not reproducible: %v vs %v", i, a.SeriesKbps[i], b.SeriesKbps[i])
		}
	}
}
