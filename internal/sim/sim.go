// Package sim contains the experiment harness that regenerates every table
// and figure of the paper's evaluation (Section V): Fig. 6 (mini-round
// convergence of the distributed decision), Fig. 7 (practical regret and
// β-regret versus the LLR baseline), Fig. 8 (estimated versus actual
// effective throughput under periodic weight updates) and Table II (the time
// model). See DESIGN.md §4 for the experiment index.
//
// All experiments run on the internal/engine orchestration subsystem: each
// figure decomposes into figure × policy × seed jobs scheduled on a bounded
// worker pool, and expensive per-instance artifacts (topology, extended
// conflict graph, channel means, the brute-force optimum) are shared through
// the engine's artifact cache. Random streams are derived from the
// configuration alone, never from scheduling, so every result is
// bit-identical for any worker count.
package sim

import (
	"fmt"
	"math"

	"multihopbandit/internal/channel"
	"multihopbandit/internal/core"
	"multihopbandit/internal/engine"
	"multihopbandit/internal/extgraph"
	"multihopbandit/internal/policy"
	"multihopbandit/internal/protocol"
	"multihopbandit/internal/regret"
	"multihopbandit/internal/rng"
	"multihopbandit/internal/spec"
	"multihopbandit/internal/timing"
)

// TheoremBeta returns the paper's approximation factor for ball parameter r
// and channel count M: Theorem 2 gives ρ^r ≤ M·(2r+1)², so the guaranteed
// ratio is ρ = (M·(2r+1)²)^{1/r}.
func TheoremBeta(m, r int) float64 {
	d := float64(2*r + 1)
	return math.Pow(float64(m)*d*d, 1.0/float64(r))
}

// Size is one N×M network size of Fig. 6.
type Size struct {
	N int
	M int
}

// DefaultFig6Sizes are the paper's six N×M combinations.
var DefaultFig6Sizes = []Size{
	{50, 5}, {100, 5}, {200, 5},
	{50, 10}, {100, 10}, {200, 10},
}

// Fig6Config parameterizes the mini-round convergence experiment.
type Fig6Config struct {
	// Sizes are the N×M networks to sweep (default DefaultFig6Sizes).
	Sizes []Size
	// MiniRounds is the x-axis extent (default 10, the paper's plot).
	MiniRounds int
	// R is the ball parameter (default 2, the paper's setting).
	R int
	// Seed drives topology and channel-mean generation.
	Seed int64
	// TargetDegree sizes the random deployment square (default 6).
	TargetDegree float64
	// Workers bounds concurrent per-size jobs (default GOMAXPROCS).
	Workers int
	// Cache optionally shares instance artifacts with other experiments.
	Cache *engine.ArtifactCache
}

// Fig6Series is one line of Fig. 6: cumulative output-IS weight (kbps) after
// each mini-round for one network size.
type Fig6Series struct {
	Size       Size
	WeightKbps []float64 // indexed by mini-round-1, padded after convergence
	Converged  int       // first mini-round (1-based) at which all vertices were marked
}

// fig6Instance keys the cached artifacts of one Fig. 6 network size; the
// stream derivation matches the historical per-size code exactly.
func fig6Instance(cfg Fig6Config, size Size) engine.InstanceConfig {
	return engine.InstanceConfig{
		N:            size.N,
		M:            size.M,
		TargetDegree: cfg.TargetDegree,
		Seed:         cfg.Seed,
		Stream:       "fig6",
		StreamN:      size.N*1000 + size.M,
		HasStreamN:   true,
		MeansStream:  "channels",
	}
}

// RunFig6 reproduces Fig. 6: for each network size, run the distributed
// strategy decision with per-vertex weights equal to the true channel means
// (in kbps, matching the paper's y-scale) and record the cumulative winner
// weight after every mini-round. Sizes run as parallel engine jobs.
func RunFig6(cfg Fig6Config) ([]Fig6Series, error) {
	if len(cfg.Sizes) == 0 {
		cfg.Sizes = DefaultFig6Sizes
	}
	if cfg.MiniRounds == 0 {
		cfg.MiniRounds = 10
	}
	if cfg.R == 0 {
		cfg.R = 2
	}
	if cfg.TargetDegree == 0 {
		cfg.TargetDegree = 6
	}
	runner := engine.NewRunner(engine.Config{
		Workers: cfg.Workers, Seed: cfg.Seed, Cache: cfg.Cache,
	})
	jobs := make([]engine.Job[Fig6Series], len(cfg.Sizes))
	for i, size := range cfg.Sizes {
		size := size
		jobs[i] = engine.Job[Fig6Series]{
			ID: engine.CellID("fig6", fmt.Sprintf("%dx%d#%d", size.N, size.M, i), cfg.Seed),
			Run: func(ctx *engine.Ctx) (Fig6Series, error) {
				return runFig6Size(cfg, size, ctx.Cache)
			},
		}
	}
	return engine.Run(runner, jobs)
}

func runFig6Size(cfg Fig6Config, size Size, cache *engine.ArtifactCache) (Fig6Series, error) {
	inst, err := cache.Instance(fig6Instance(cfg, size))
	if err != nil {
		return Fig6Series{}, fmt.Errorf("sim: fig6 %dx%d: %w", size.N, size.M, err)
	}
	rt, err := protocol.New(protocol.Config{Ext: inst.Ext, R: cfg.R, D: cfg.MiniRounds})
	if err != nil {
		return Fig6Series{}, err
	}
	res, err := rt.Decide(inst.Means, nil)
	if err != nil {
		return Fig6Series{}, fmt.Errorf("sim: fig6 decide %dx%d: %w", size.N, size.M, err)
	}
	series := Fig6Series{Size: size, Converged: res.MiniRounds}
	for tau := 0; tau < cfg.MiniRounds; tau++ {
		var w float64
		if tau < len(res.WeightByMiniRound) {
			w = res.WeightByMiniRound[tau]
		} else {
			w = res.WeightByMiniRound[len(res.WeightByMiniRound)-1]
		}
		series.WeightKbps = append(series.WeightKbps, channel.Kbps(w))
	}
	return series, nil
}

// PolicyKind selects a learning policy in experiment configs.
type PolicyKind int

const (
	// PolicyZhouLi is the paper's Algorithm 2 learning rule.
	PolicyZhouLi PolicyKind = iota + 1
	// PolicyLLR is the Gai–Krishnamachari–Jain baseline.
	PolicyLLR
	// PolicyEpsGreedy is the ε-greedy ablation baseline.
	PolicyEpsGreedy
	// PolicyOracle is the genie.
	PolicyOracle
	// PolicyCUCB is the combinatorial-UCB baseline of Chen et al.
	PolicyCUCB
)

// String names the policy kind.
func (p PolicyKind) String() string {
	switch p {
	case PolicyZhouLi:
		return "Algorithm2"
	case PolicyLLR:
		return "LLR"
	case PolicyEpsGreedy:
		return "EpsGreedy"
	case PolicyOracle:
		return "Oracle"
	case PolicyCUCB:
		return "CUCB"
	default:
		return fmt.Sprintf("PolicyKind(%d)", int(p))
	}
}

// specPolicy maps the figure harness's PolicyKind onto the declarative
// PolicySpec, so construction flows through the one spec.BuildPolicy path.
func specPolicy(kind PolicyKind) (spec.PolicySpec, error) {
	switch kind {
	case PolicyZhouLi:
		return spec.PolicySpec{Kind: spec.PolicyZhouLi}, nil
	case PolicyLLR:
		return spec.PolicySpec{Kind: spec.PolicyLLR}, nil
	case PolicyEpsGreedy:
		return spec.PolicySpec{Kind: spec.PolicyEpsGreedy, Epsilon: 0.1}, nil
	case PolicyOracle:
		return spec.PolicySpec{Kind: spec.PolicyOracle}, nil
	case PolicyCUCB:
		return spec.PolicySpec{Kind: spec.PolicyCUCB}, nil
	default:
		return spec.PolicySpec{}, fmt.Errorf("sim: unknown policy kind %d", int(kind))
	}
}

// buildPolicy constructs a figure policy through spec.BuildPolicy. The
// ε-greedy stream keeps its historical "eps-greedy" sub-stream name — part
// of the bit-identity contract behind the figgen golden digest.
func buildPolicy(kind PolicyKind, ext *extgraph.Extended, ch *channel.Model, src *rng.Source) (policy.Policy, error) {
	ps, err := specPolicy(kind)
	if err != nil {
		return nil, err
	}
	return spec.BuildPolicy(ps, ext.K(), ext.N, ch.Means(), src.Split("eps-greedy"))
}

// Fig7Config parameterizes the regret comparison of Fig. 7.
type Fig7Config struct {
	// N and M are the network size (paper: 15 users, 3 channels).
	N, M int
	// Slots is the horizon (paper: 1000).
	Slots int
	// R and D configure the distributed decision (defaults 2 and 4).
	R, D int
	// Policies to compare (default Algorithm 2 vs LLR).
	Policies []PolicyKind
	// Seed drives everything.
	Seed int64
	// TargetDegree sizes the deployment square (default 6).
	TargetDegree float64
	// Workers bounds concurrent per-policy jobs (default GOMAXPROCS).
	Workers int
	// Cache optionally shares instance artifacts across runs: repeated
	// RunFig7 calls with equal instance parameters then pay the topology,
	// extended-graph and brute-force-optimum cost once.
	Cache *engine.ArtifactCache
}

func (c *Fig7Config) fill() {
	if c.N == 0 {
		c.N = 15
	}
	if c.M == 0 {
		c.M = 3
	}
	if c.Slots == 0 {
		c.Slots = 1000
	}
	if c.R == 0 {
		c.R = 2
	}
	if c.D == 0 {
		c.D = 4
	}
	if len(c.Policies) == 0 {
		c.Policies = []PolicyKind{PolicyZhouLi, PolicyLLR}
	}
	if c.TargetDegree == 0 {
		c.TargetDegree = 6
	}
}

// fig7Instance keys the cached Fig. 7 instance; streams match the
// historical code ("fig7" root, "topology" and "means" sub-streams).
func (c *Fig7Config) fig7Instance() engine.InstanceConfig {
	return engine.InstanceConfig{
		N:                c.N,
		M:                c.M,
		TargetDegree:     c.TargetDegree,
		RequireConnected: true,
		Seed:             c.Seed,
		Stream:           "fig7",
	}
}

// Fig7PolicyResult is one policy's regret trajectories.
type Fig7PolicyResult struct {
	Policy PolicyKind
	// PracticalRegret[t] = R1 − θ·avg_{≤t}(observed), kbps (Fig. 7a).
	PracticalRegret []float64
	// PracticalBetaRegret[t] = R1/β − θ·avg_{≤t}(observed), kbps (Fig. 7b).
	PracticalBetaRegret []float64
	// AvgThroughputKbps is the final average observed throughput.
	AvgThroughputKbps float64
}

// Fig7Result bundles the experiment output.
type Fig7Result struct {
	// OptimalKbps is the brute-force optimum R1 of the instance.
	OptimalKbps float64
	// Beta is the Theorem 2 factor used for the β-regret curve.
	Beta float64
	// Theta is t_d/t_a from the time model.
	Theta float64
	// Policies holds one trajectory per compared policy.
	Policies []Fig7PolicyResult
}

// RunFig7 reproduces Fig. 7: a connected 15×3 random network whose optimum
// is computed by brute force (once per instance, memoized by the artifact
// cache), with each policy learning for the given horizon as a parallel
// engine job; returns per-slot practical regret and β-regret series.
func RunFig7(cfg Fig7Config) (*Fig7Result, error) {
	cfg.fill()
	runner := engine.NewRunner(engine.Config{
		Workers: cfg.Workers, Seed: cfg.Seed, Cache: cfg.Cache,
	})
	inst, err := runner.Cache().Instance(cfg.fig7Instance())
	if err != nil {
		return nil, fmt.Errorf("sim: fig7 instance: %w", err)
	}
	optNorm, err := inst.Optimal()
	if err != nil {
		return nil, err
	}
	tp := timing.Paper()
	res := &Fig7Result{
		OptimalKbps: channel.Kbps(optNorm),
		Beta:        TheoremBeta(cfg.M, cfg.R),
		Theta:       tp.Theta(),
	}
	jobs := make([]engine.Job[Fig7PolicyResult], len(cfg.Policies))
	for i, kind := range cfg.Policies {
		kind := kind
		jobs[i] = engine.Job[Fig7PolicyResult]{
			ID: engine.CellID("fig7", fmt.Sprintf("%s#%d", kind, i), cfg.Seed),
			Run: func(*engine.Ctx) (Fig7PolicyResult, error) {
				return runFig7Policy(cfg, inst, res.OptimalKbps, res.Beta, res.Theta, tp, kind)
			},
		}
	}
	out, err := engine.Run(runner, jobs)
	if err != nil {
		return nil, err
	}
	res.Policies = out
	return res, nil
}

// runFig7Policy simulates one policy of Fig. 7. Every policy sees an
// identically-distributed channel process: same means (the cached instance),
// per-policy noise stream.
func runFig7Policy(
	cfg Fig7Config,
	inst *engine.Instance,
	optKbps, beta, theta float64,
	tp timing.Params,
	kind PolicyKind,
) (Fig7PolicyResult, error) {
	root := rng.New(cfg.Seed).Split("fig7")
	ch, err := inst.Channels(root.Split("noise-" + kind.String()))
	if err != nil {
		return Fig7PolicyResult{}, err
	}
	pol, err := buildPolicy(kind, inst.Ext, ch, root)
	if err != nil {
		return Fig7PolicyResult{}, err
	}
	scheme, err := core.New(core.Config{
		Net:      inst.Net,
		Channels: ch,
		M:        cfg.M,
		R:        cfg.R,
		D:        cfg.D,
		Policy:   pol,
		Timing:   tp,
	})
	if err != nil {
		return Fig7PolicyResult{}, err
	}
	// Stream the observed-kbps series straight off the kernel — the regret
	// math needs nothing else, so no per-slot results are materialized.
	rec := core.NewKbpsRecorder(cfg.Slots)
	if err := scheme.RunObserved(cfg.Slots, rec); err != nil {
		return Fig7PolicyResult{}, fmt.Errorf("sim: fig7 %s: %w", kind, err)
	}
	observed := rec.Series
	betaSeries, err := regret.PracticalBetaSeries(optKbps, beta, theta, observed)
	if err != nil {
		return Fig7PolicyResult{}, err
	}
	avg := 0.0
	for _, o := range observed {
		avg += o
	}
	avg /= float64(len(observed))
	return Fig7PolicyResult{
		Policy:              kind,
		PracticalRegret:     regret.PracticalSeries(optKbps, theta, observed),
		PracticalBetaRegret: betaSeries,
		AvgThroughputKbps:   avg,
	}, nil
}

// Fig8Config parameterizes the periodic-update experiment of Fig. 8.
type Fig8Config struct {
	// N and M are the network size (paper: 100 users, 10 channels).
	N, M int
	// Periods is the number of update periods (paper: 1000).
	Periods int
	// Ys are the update periods in slots (paper: 1, 5, 10, 20).
	Ys []int
	// R and D configure the distributed decision (defaults 2 and 4).
	R, D int
	// Policies to compare (default Algorithm 2 vs LLR).
	Policies []PolicyKind
	// Seed drives everything.
	Seed int64
	// TargetDegree sizes the deployment square (default 6).
	TargetDegree float64
	// Workers bounds concurrent (y, policy) jobs (default GOMAXPROCS).
	Workers int
	// Cache optionally shares instance artifacts with other experiments.
	Cache *engine.ArtifactCache
}

func (c *Fig8Config) fill() {
	if c.N == 0 {
		c.N = 100
	}
	if c.M == 0 {
		c.M = 10
	}
	if c.Periods == 0 {
		c.Periods = 1000
	}
	if len(c.Ys) == 0 {
		c.Ys = []int{1, 5, 10, 20}
	}
	if c.R == 0 {
		c.R = 2
	}
	if c.D == 0 {
		c.D = 4
	}
	if len(c.Policies) == 0 {
		c.Policies = []PolicyKind{PolicyZhouLi, PolicyLLR}
	}
	if c.TargetDegree == 0 {
		c.TargetDegree = 6
	}
}

// fig8Instance keys the cached Fig. 8 instance.
func (c *Fig8Config) fig8Instance() engine.InstanceConfig {
	return engine.InstanceConfig{
		N:            c.N,
		M:            c.M,
		TargetDegree: c.TargetDegree,
		Seed:         c.Seed,
		Stream:       "fig8",
	}
}

// Fig8Series is one curve pair of a Fig. 8 subplot: running averages of the
// actual and estimated effective throughput, per period, in kbps.
type Fig8Series struct {
	Policy PolicyKind
	// ActualAvg[z] is R̃_P(z): running average of actual effective
	// throughput up to period z.
	ActualAvg []float64
	// EstimatedAvg[z] is W̃_P(z): running average of estimated effective
	// throughput up to period z.
	EstimatedAvg []float64
}

// Fig8Subplot is one update-period setting (one subplot of Fig. 8).
type Fig8Subplot struct {
	Y      int
	Slots  int
	Series []Fig8Series
}

// RunFig8 reproduces Fig. 8: a 100×10 random network, strategy re-decided
// every y slots, horizons of Periods·y slots, comparing the running average
// actual effective throughput R̃_P against the estimated W̃_P for Algorithm 2
// and LLR. Each (y, policy) branch is one engine job over the shared cached
// instance.
func RunFig8(cfg Fig8Config) ([]Fig8Subplot, error) {
	cfg.fill()
	runner := engine.NewRunner(engine.Config{
		Workers: cfg.Workers, Seed: cfg.Seed, Cache: cfg.Cache,
	})
	inst, err := runner.Cache().Instance(cfg.fig8Instance())
	if err != nil {
		return nil, fmt.Errorf("sim: fig8 instance: %w", err)
	}
	tp := timing.Paper()
	var jobs []engine.Job[Fig8Series]
	for yi, y := range cfg.Ys {
		for pi, kind := range cfg.Policies {
			y, kind := y, kind
			jobs = append(jobs, engine.Job[Fig8Series]{
				ID: engine.CellID("fig8", fmt.Sprintf("y=%d#%d/%s#%d", y, yi, kind, pi), cfg.Seed),
				Run: func(*engine.Ctx) (Fig8Series, error) {
					s, err := runFig8Branch(cfg, inst, tp, y, kind)
					if err != nil {
						return Fig8Series{}, fmt.Errorf("sim: fig8 y=%d %s: %w", y, kind, err)
					}
					return s, nil
				},
			})
		}
	}
	results, err := engine.Run(runner, jobs)
	if err != nil {
		return nil, err
	}
	out := make([]Fig8Subplot, 0, len(cfg.Ys))
	bi := 0
	for _, y := range cfg.Ys {
		sub := Fig8Subplot{Y: y, Slots: y * cfg.Periods}
		for range cfg.Policies {
			sub.Series = append(sub.Series, results[bi])
			bi++
		}
		out = append(out, sub)
	}
	return out, nil
}

// runFig8Branch simulates one (update period, policy) combination of Fig. 8.
// It only reads the shared cached instance and derives its own random
// sub-streams, so branches run concurrently and deterministically.
func runFig8Branch(
	cfg Fig8Config,
	inst *engine.Instance,
	tp timing.Params,
	y int,
	kind PolicyKind,
) (Fig8Series, error) {
	root := rng.New(cfg.Seed).Split("fig8")
	ch, err := inst.Channels(root.SplitN("noise-"+kind.String(), y))
	if err != nil {
		return Fig8Series{}, err
	}
	pol, err := buildPolicy(kind, inst.Ext, ch, root)
	if err != nil {
		return Fig8Series{}, err
	}
	scheme, err := core.New(core.Config{
		Net:         inst.Net,
		Channels:    ch,
		M:           cfg.M,
		R:           cfg.R,
		D:           cfg.D,
		Policy:      pol,
		Timing:      tp,
		UpdateEvery: y,
	})
	if err != nil {
		return Fig8Series{}, err
	}
	// Stream the whole horizon through the kernel's recorders: the kbps
	// recorder collects every slot's observed throughput and the decision
	// recorder collects each period's estimated weight (with UpdateEvery=y
	// the decision slots are exactly the period starts). The period math
	// then windows the streamed series — no per-slot result structs.
	slots := cfg.Periods * y
	kbps := core.NewKbpsRecorder(slots)
	est := core.NewDecisionRecorder(cfg.Periods)
	if err := scheme.RunObserved(slots, core.Observers{kbps, est}); err != nil {
		return Fig8Series{}, err
	}
	if len(est.EstimatedKbps) != cfg.Periods {
		return Fig8Series{}, fmt.Errorf("sim: fig8 recorded %d decisions over %d periods", len(est.EstimatedKbps), cfg.Periods)
	}
	series := Fig8Series{Policy: kind}
	actual := make([]float64, 0, cfg.Periods)
	estimated := make([]float64, 0, cfg.Periods)
	for z := 0; z < cfg.Periods; z++ {
		rp, err := tp.PeriodThroughput(kbps.Series[z*y : (z+1)*y])
		if err != nil {
			return Fig8Series{}, err
		}
		actual = append(actual, rp)
		estimated = append(estimated, tp.PeriodEstimate(est.EstimatedKbps[z], y))
	}
	series.ActualAvg = regret.RunningAverage(actual)
	series.EstimatedAvg = regret.RunningAverage(estimated)
	return series, nil
}
