package sim

import (
	"math"
	"testing"
)

func TestTheoremBeta(t *testing.T) {
	// M=3, r=2: ρ² = 3·25 = 75 → ρ = sqrt(75).
	if got, want := TheoremBeta(3, 2), math.Sqrt(75); math.Abs(got-want) > 1e-12 {
		t.Fatalf("TheoremBeta(3,2) = %v, want %v", got, want)
	}
	// M=10, r=2: ρ = sqrt(250).
	if got, want := TheoremBeta(10, 2), math.Sqrt(250); math.Abs(got-want) > 1e-12 {
		t.Fatalf("TheoremBeta(10,2) = %v, want %v", got, want)
	}
}

func TestPolicyKindString(t *testing.T) {
	tests := []struct {
		k    PolicyKind
		want string
	}{
		{PolicyZhouLi, "Algorithm2"},
		{PolicyLLR, "LLR"},
		{PolicyEpsGreedy, "EpsGreedy"},
		{PolicyOracle, "Oracle"},
		{PolicyKind(42), "PolicyKind(42)"},
	}
	for _, tt := range tests {
		if got := tt.k.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

func TestRunFig6Shape(t *testing.T) {
	// Small sizes keep the test fast; the paper's claim is that every
	// series converges within a few mini-rounds and stays flat after.
	series, err := RunFig6(Fig6Config{
		Seed:  1,
		Sizes: []Size{{30, 5}, {60, 5}, {30, 10}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 3 {
		t.Fatalf("got %d series", len(series))
	}
	for _, s := range series {
		if len(s.WeightKbps) != 10 {
			t.Fatalf("%dx%d: series length %d", s.Size.N, s.Size.M, len(s.WeightKbps))
		}
		// Monotone non-decreasing.
		for i := 1; i < len(s.WeightKbps); i++ {
			if s.WeightKbps[i] < s.WeightKbps[i-1]-1e-9 {
				t.Fatalf("%dx%d: series not monotone at %d", s.Size.N, s.Size.M, i)
			}
		}
		// Converges within the plot (paper: by mini-round 4; allow 8).
		if s.Converged > 8 {
			t.Fatalf("%dx%d: converged only at mini-round %d", s.Size.N, s.Size.M, s.Converged)
		}
		// Flat after convergence.
		final := s.WeightKbps[len(s.WeightKbps)-1]
		if s.WeightKbps[s.Converged-1] != final {
			t.Fatalf("%dx%d: series moved after convergence", s.Size.N, s.Size.M)
		}
		if final <= 0 {
			t.Fatalf("%dx%d: zero final weight", s.Size.N, s.Size.M)
		}
	}
}

func TestRunFig6LargerNetsHaveMoreWeight(t *testing.T) {
	series, err := RunFig6(Fig6Config{
		Seed:  2,
		Sizes: []Size{{30, 5}, {90, 5}},
	})
	if err != nil {
		t.Fatal(err)
	}
	small := series[0].WeightKbps[9]
	large := series[1].WeightKbps[9]
	if large <= small {
		t.Fatalf("90-node net weight %v not above 30-node net %v", large, small)
	}
}

func TestRunFig7Shape(t *testing.T) {
	res, err := RunFig7(Fig7Config{Seed: 42, Slots: 400})
	if err != nil {
		t.Fatal(err)
	}
	if res.OptimalKbps <= 0 {
		t.Fatalf("optimal = %v", res.OptimalKbps)
	}
	if res.Theta != 0.5 {
		t.Fatalf("theta = %v", res.Theta)
	}
	if len(res.Policies) != 2 {
		t.Fatalf("policies = %d", len(res.Policies))
	}
	var alg2, llr Fig7PolicyResult
	for _, p := range res.Policies {
		switch p.Policy {
		case PolicyZhouLi:
			alg2 = p
		case PolicyLLR:
			llr = p
		}
	}
	last := len(alg2.PracticalRegret) - 1
	// Paper Fig. 7(a): Algorithm 2 ends below LLR.
	if alg2.PracticalRegret[last] >= llr.PracticalRegret[last] {
		t.Fatalf("Algorithm2 regret %v not below LLR %v",
			alg2.PracticalRegret[last], llr.PracticalRegret[last])
	}
	// Practical regret stays far above zero (learning-time cost).
	if alg2.PracticalRegret[last] <= 0 {
		t.Fatalf("practical regret = %v, expected positive", alg2.PracticalRegret[last])
	}
	// Fig. 7(b): β-regret converges to a negative value for both.
	if alg2.PracticalBetaRegret[last] >= 0 || llr.PracticalBetaRegret[last] >= 0 {
		t.Fatalf("beta regrets not negative: %v, %v",
			alg2.PracticalBetaRegret[last], llr.PracticalBetaRegret[last])
	}
	// Sanity: the practical regret is bounded by the optimum.
	if alg2.PracticalRegret[last] > res.OptimalKbps {
		t.Fatal("regret exceeds optimum")
	}
}

func TestRunFig7ObservedNeverBeatsOptimumOnAverage(t *testing.T) {
	res, err := RunFig7(Fig7Config{Seed: 7, Slots: 300})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Policies {
		// Average observed throughput can fluctuate above the static
		// optimum only via noise; with σ=0.05 it must stay within a few
		// percent of it.
		if p.AvgThroughputKbps > res.OptimalKbps*1.05 {
			t.Fatalf("%s average %v implausibly above optimum %v",
				p.Policy, p.AvgThroughputKbps, res.OptimalKbps)
		}
	}
}

func TestRunFig8Shape(t *testing.T) {
	subs, err := RunFig8(Fig8Config{
		Seed:    7,
		N:       30,
		M:       4,
		Periods: 60,
		Ys:      []int{1, 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(subs) != 2 {
		t.Fatalf("subplots = %d", len(subs))
	}
	bySubplot := map[int]map[PolicyKind]Fig8Series{}
	for _, sub := range subs {
		bySubplot[sub.Y] = map[PolicyKind]Fig8Series{}
		for _, s := range sub.Series {
			bySubplot[sub.Y][s.Policy] = s
		}
	}
	last := 59
	// (1) Larger y yields higher actual effective throughput (less time
	// lost to strategy decisions).
	a1 := bySubplot[1][PolicyZhouLi].ActualAvg[last]
	a5 := bySubplot[5][PolicyZhouLi].ActualAvg[last]
	if a5 <= a1 {
		t.Fatalf("y=5 actual %v not above y=1 actual %v", a5, a1)
	}
	// (2) Algorithm 2 beats LLR on actual throughput.
	for _, y := range []int{1, 5} {
		alg2 := bySubplot[y][PolicyZhouLi].ActualAvg[last]
		llr := bySubplot[y][PolicyLLR].ActualAvg[last]
		if alg2 <= llr {
			t.Fatalf("y=%d: Algorithm2 actual %v not above LLR %v", y, alg2, llr)
		}
	}
	// (3) Algorithm 2's estimate tracks its actual throughput much more
	// tightly than LLR's (the paper's headline observation).
	for _, y := range []int{1, 5} {
		alg2 := bySubplot[y][PolicyZhouLi]
		llr := bySubplot[y][PolicyLLR]
		gapAlg2 := math.Abs(alg2.EstimatedAvg[last]-alg2.ActualAvg[last]) / alg2.ActualAvg[last]
		gapLLR := math.Abs(llr.EstimatedAvg[last]-llr.ActualAvg[last]) / llr.ActualAvg[last]
		if gapAlg2 >= gapLLR {
			t.Fatalf("y=%d: Algorithm2 gap %v not tighter than LLR gap %v", y, gapAlg2, gapLLR)
		}
	}
}

func TestRunFig8SeriesLengths(t *testing.T) {
	subs, err := RunFig8(Fig8Config{Seed: 3, N: 20, M: 3, Periods: 25, Ys: []int{2}})
	if err != nil {
		t.Fatal(err)
	}
	for _, sub := range subs {
		if sub.Slots != 50 {
			t.Fatalf("slots = %d, want 50", sub.Slots)
		}
		for _, s := range sub.Series {
			if len(s.ActualAvg) != 25 || len(s.EstimatedAvg) != 25 {
				t.Fatalf("series lengths %d/%d", len(s.ActualAvg), len(s.EstimatedAvg))
			}
		}
	}
}

func TestRunFig6Deterministic(t *testing.T) {
	run := func() []Fig6Series {
		s, err := RunFig6(Fig6Config{Seed: 5, Sizes: []Size{{25, 3}}})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a, b := run(), run()
	for i := range a[0].WeightKbps {
		if a[0].WeightKbps[i] != b[0].WeightKbps[i] {
			t.Fatal("Fig6 run not deterministic")
		}
	}
}
