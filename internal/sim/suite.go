package sim

import (
	"fmt"

	"multihopbandit/internal/engine"
)

// SuiteExperiments lists the experiment names RunExperiments understands, in
// execution order.
var SuiteExperiments = []string{"fig6", "fig7", "fig8", "ablations", "shift"}

// SuiteConfig selects and parameterizes a batch of evaluation experiments
// executed through one shared engine and artifact cache.
type SuiteConfig struct {
	// Seed is the default root seed for experiments whose own Seed is zero.
	Seed int64
	// Workers bounds each experiment's concurrency (default GOMAXPROCS).
	Workers int
	// Include selects experiments by name (see SuiteExperiments); empty
	// runs all of them.
	Include []string
	// Per-experiment configurations. Zero Seed/Workers fields inherit the
	// suite's; Cache is always overridden with the suite's shared cache.
	Fig6     Fig6Config
	Fig7     Fig7Config
	Fig8     Fig8Config
	Ablation AblationConfig
	Shift    ShiftConfig
	// Fig7Seeds, when non-empty, additionally replicates Fig. 7 across
	// these seeds and fills Fig7Replicated.
	Fig7Seeds []int64
	// Progress, if set, is called after each completed experiment.
	Progress func(name string, done, total int)
}

// SuiteResult bundles the outputs of one RunExperiments call. Only the
// fields of included experiments are populated.
type SuiteResult struct {
	Fig6           []Fig6Series
	Fig7           *Fig7Result
	Fig8           []Fig8Subplot
	AblationR      []AblationPoint
	AblationD      []AblationPoint
	AblationSolver []AblationPoint
	Shift          *ShiftResult
	Fig7Replicated *Fig7Replicated
	// Cache reports the shared artifact cache's accounting after the run.
	Cache engine.CacheStats
}

// RunExperiments regenerates the selected evaluation experiments through the
// engine. All experiments share one artifact cache, so overlapping instance
// parameters (e.g. the three ablation sweeps, or Fig. 7 and its replication
// at the same seed) pay the topology/extended-graph/optimum cost once.
func RunExperiments(cfg SuiteConfig) (*SuiteResult, error) {
	include := cfg.Include
	if len(include) == 0 {
		include = SuiteExperiments
	}
	cache := engine.NewArtifactCache()
	res := &SuiteResult{}

	type step struct {
		name string
		run  func() error
	}
	var steps []step
	for _, name := range include {
		switch name {
		case "fig6":
			c := cfg.Fig6
			inheritSuite(&c.Seed, &c.Workers, cfg)
			c.Cache = cache
			steps = append(steps, step{"fig6", func() error {
				out, err := RunFig6(c)
				res.Fig6 = out
				return err
			}})
		case "fig7":
			c := cfg.Fig7
			inheritSuite(&c.Seed, &c.Workers, cfg)
			c.Cache = cache
			steps = append(steps, step{"fig7", func() error {
				out, err := RunFig7(c)
				res.Fig7 = out
				return err
			}})
		case "fig8":
			c := cfg.Fig8
			inheritSuite(&c.Seed, &c.Workers, cfg)
			c.Cache = cache
			steps = append(steps, step{"fig8", func() error {
				out, err := RunFig8(c)
				res.Fig8 = out
				return err
			}})
		case "ablations":
			c := cfg.Ablation
			inheritSuite(&c.Seed, &c.Workers, cfg)
			c.Cache = cache
			steps = append(steps, step{"ablations", func() error {
				var err error
				if res.AblationR, err = RunAblationR(c); err != nil {
					return err
				}
				if res.AblationD, err = RunAblationD(c); err != nil {
					return err
				}
				res.AblationSolver, err = RunAblationSolver(c)
				return err
			}})
		case "shift":
			c := cfg.Shift
			inheritSuite(&c.Seed, &c.Workers, cfg)
			c.Cache = cache
			steps = append(steps, step{"shift", func() error {
				out, err := RunShift(c)
				res.Shift = out
				return err
			}})
		default:
			return nil, fmt.Errorf("sim: unknown experiment %q (known: %v)", name, SuiteExperiments)
		}
	}
	if len(cfg.Fig7Seeds) > 0 {
		c := cfg.Fig7
		inheritSuite(&c.Seed, &c.Workers, cfg)
		c.Cache = cache
		steps = append(steps, step{"fig7rep", func() error {
			out, err := RunFig7Replicated(c, cfg.Fig7Seeds, cfg.Workers)
			res.Fig7Replicated = out
			return err
		}})
	}

	for i, st := range steps {
		if err := st.run(); err != nil {
			return nil, err
		}
		if cfg.Progress != nil {
			cfg.Progress(st.name, i+1, len(steps))
		}
	}
	res.Cache = cache.Stats()
	return res, nil
}

// inheritSuite fills an experiment's zero Seed/Workers from the suite's.
func inheritSuite(seed *int64, workers *int, cfg SuiteConfig) {
	if *seed == 0 {
		*seed = cfg.Seed
	}
	if *workers == 0 {
		*workers = cfg.Workers
	}
}
