package sim

import (
	"testing"

	"multihopbandit/internal/engine"
)

// fig7sEqual compares two Fig. 7 results bit-for-bit.
func fig7sEqual(t *testing.T, a, b *Fig7Result) {
	t.Helper()
	if a.OptimalKbps != b.OptimalKbps || a.Beta != b.Beta || a.Theta != b.Theta {
		t.Fatalf("headline mismatch: %+v vs %+v", a, b)
	}
	if len(a.Policies) != len(b.Policies) {
		t.Fatalf("policy count mismatch")
	}
	for i := range a.Policies {
		pa, pb := a.Policies[i], b.Policies[i]
		if pa.Policy != pb.Policy || pa.AvgThroughputKbps != pb.AvgThroughputKbps {
			t.Fatalf("policy %d summary mismatch", i)
		}
		for j := range pa.PracticalRegret {
			if pa.PracticalRegret[j] != pb.PracticalRegret[j] ||
				pa.PracticalBetaRegret[j] != pb.PracticalBetaRegret[j] {
				t.Fatalf("policy %d diverges at slot %d", i, j)
			}
		}
	}
}

func TestRunFig7WorkersBitIdentical(t *testing.T) {
	base := Fig7Config{Seed: 9, Slots: 150, N: 10, M: 3}
	w1 := base
	w1.Workers = 1
	a, err := RunFig7(w1)
	if err != nil {
		t.Fatal(err)
	}
	w8 := base
	w8.Workers = 8
	b, err := RunFig7(w8)
	if err != nil {
		t.Fatal(err)
	}
	fig7sEqual(t, a, b)
}

func TestRunFig8WorkersBitIdentical(t *testing.T) {
	base := Fig8Config{Seed: 3, N: 12, M: 3, Periods: 8, Ys: []int{1, 3}}
	w1 := base
	w1.Workers = 1
	a, err := RunFig8(w1)
	if err != nil {
		t.Fatal(err)
	}
	w8 := base
	w8.Workers = 8
	b, err := RunFig8(w8)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatal("subplot count mismatch")
	}
	for i := range a {
		for j := range a[i].Series {
			sa, sb := a[i].Series[j], b[i].Series[j]
			for k := range sa.ActualAvg {
				if sa.ActualAvg[k] != sb.ActualAvg[k] || sa.EstimatedAvg[k] != sb.EstimatedAvg[k] {
					t.Fatalf("subplot %d series %d diverges at period %d", i, j, k)
				}
			}
		}
	}
}

func TestSharedCacheAcrossRepeatedFig7(t *testing.T) {
	cache := engine.NewArtifactCache()
	cfg := Fig7Config{Seed: 5, Slots: 40, N: 8, M: 2, Cache: cache}
	a, err := RunFig7(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunFig7(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fig7sEqual(t, a, b)
	st := cache.Stats()
	if st.Misses != 1 || st.Hits < 1 {
		t.Fatalf("cache stats = %+v; repeated run rebuilt the instance", st)
	}
}

func TestRunExperimentsSuite(t *testing.T) {
	var names []string
	res, err := RunExperiments(SuiteConfig{
		Seed:     1,
		Fig6:     Fig6Config{Sizes: []Size{{15, 2}}},
		Fig7:     Fig7Config{Slots: 40, N: 8, M: 2},
		Fig8:     Fig8Config{N: 10, M: 2, Periods: 3, Ys: []int{2}},
		Ablation: AblationConfig{N: 20, M: 3},
		Shift:    ShiftConfig{N: 10, M: 2, Slots: 120, Period: 40},
		Progress: func(name string, done, total int) { names = append(names, name) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Fig6) != 1 || res.Fig7 == nil || len(res.Fig8) != 1 || res.Shift == nil {
		t.Fatalf("missing suite outputs: %+v", res)
	}
	if len(res.AblationR) != 3 || len(res.AblationD) != 5 || len(res.AblationSolver) != 3 {
		t.Fatal("missing ablation outputs")
	}
	if len(names) != 5 {
		t.Fatalf("progress fired %d times: %v", len(names), names)
	}
	// The three ablation sweeps share one instance, so the suite must have
	// served some lookups from cache.
	if res.Cache.Hits == 0 {
		t.Fatalf("cache never hit: %+v", res.Cache)
	}
}

func TestRunExperimentsInclude(t *testing.T) {
	res, err := RunExperiments(SuiteConfig{
		Seed:    2,
		Include: []string{"fig6"},
		Fig6:    Fig6Config{Sizes: []Size{{12, 2}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Fig6) != 1 || res.Fig7 != nil || res.Shift != nil {
		t.Fatalf("include filter ignored: %+v", res)
	}
	if _, err := RunExperiments(SuiteConfig{Include: []string{"nope"}}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunExperimentsFig7Seeds(t *testing.T) {
	res, err := RunExperiments(SuiteConfig{
		Seed:      1,
		Include:   []string{"fig7"},
		Fig7:      Fig7Config{Slots: 40, N: 8, M: 2},
		Fig7Seeds: SeedRange(1, 3),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Fig7Replicated == nil || res.Fig7Replicated.FinalRegret["Algorithm2"].N != 3 {
		t.Fatalf("replication missing: %+v", res.Fig7Replicated)
	}
	// Seed 1 appears both as the single run and in the replication: its
	// instance must have been cached, not rebuilt.
	if res.Cache.Hits == 0 {
		t.Fatalf("no cache reuse across fig7 and fig7rep: %+v", res.Cache)
	}
}
