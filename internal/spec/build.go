package spec

import (
	"fmt"

	"multihopbandit/internal/channel"
	"multihopbandit/internal/extgraph"
	"multihopbandit/internal/policy"
	"multihopbandit/internal/rng"
	"multihopbandit/internal/timing"
	"multihopbandit/internal/topology"
)

// The build functions turn a canonical ScenarioSpec into runnable pieces.
// Every random stream they consume derives from the spec alone:
//
//	rng.New(Seed).Split("serve")                  artifact root
//	    .Split("topology")                        random placement
//	    .Split("means")                           true channel means
//	rng.New(NoiseSeed).SplitPath("serve","noise") channel process
//	rng.New(NoiseSeed).SplitPath("serve","policy") randomized policies
//
// The artifact derivations are byte-for-byte the ones the serving runtime
// has always used (engine.InstanceConfig{Stream: "serve"}), so a spec-built
// scenario is bit-identical to its pre-spec flat-config equivalent; the
// noise derivation is the serving runtime's historical NoiseStream. Do not
// rename these streams — they are part of the bit-identity contract
// (CONTRIBUTING.md).

// ArtifactStream is the root stream scenario artifacts are drawn from.
func ArtifactStream(seed int64) *rng.Source {
	return rng.New(seed).Split("serve")
}

// NoiseStream derives the channel-process stream of an instance with the
// given noise seed. Exported so external verifiers can reconstruct a served
// instance's exact reward sequence.
func NoiseStream(noiseSeed int64) *rng.Source {
	return rng.New(noiseSeed).SplitPath("serve", "noise")
}

// PolicyStream derives the stream randomized policies (ε-greedy) draw from.
func PolicyStream(noiseSeed int64) *rng.Source {
	return rng.New(noiseSeed).SplitPath("serve", "policy")
}

// BuildNetwork constructs the network of a canonical TopologySpec. Only the
// random kind consumes src; grid and linear layouts are deterministic.
func BuildNetwork(t TopologySpec, src *rng.Source) (*topology.Network, error) {
	switch t.Kind {
	case TopologyRandom:
		return topology.Random(topology.RandomConfig{
			N:                t.N,
			TargetDegree:     t.TargetDegree,
			RequireConnected: t.RequireConnected,
		}, src)
	case TopologyGrid:
		return topology.Grid(t.Rows, t.Cols, t.Spacing, t.Radius)
	case TopologyLinear:
		return topology.Linear(t.N, t.Spacing, t.Radius)
	default:
		return nil, &KindError{Field: "topology.kind", Kind: t.Kind, Allowed: topologyKinds}
	}
}

// Artifacts bundles the immutable shareable artifacts of one scenario:
// everything determined by the spec's ArtifactKey.
type Artifacts struct {
	// Net is the network topology.
	Net *topology.Network
	// Ext is the extended conflict graph H.
	Ext *extgraph.Extended
	// Means are the true per-arm catalog means (normalized). For dynamic
	// channel kinds they parameterize the gaussian base case only; the
	// dynamic samplers draw their own rates from the noise-seed stream.
	Means []float64
}

// BuildArtifacts canonicalizes the spec and constructs its artifacts. The
// engine's ArtifactCache memoizes this per ArtifactKey; direct callers (the
// golden tests, serial verifiers) get bit-identical results.
func BuildArtifacts(s ScenarioSpec) (*Artifacts, error) {
	canon, err := s.Canonical()
	if err != nil {
		return nil, err
	}
	root := ArtifactStream(canon.Seed)
	nw, err := BuildNetwork(canon.Topology, root.Split("topology"))
	if err != nil {
		return nil, fmt.Errorf("spec: scenario topology: %w", err)
	}
	ext, err := extgraph.Build(nw.G, canon.Channel.M)
	if err != nil {
		return nil, fmt.Errorf("spec: scenario extended graph: %w", err)
	}
	ch, err := channel.NewModel(channel.Config{N: canon.Topology.N, M: canon.Channel.M}, root.Split("means"))
	if err != nil {
		return nil, fmt.Errorf("spec: scenario channel means: %w", err)
	}
	return &Artifacts{Net: nw, Ext: ext, Means: ch.Means()}, nil
}

// BuildSampler constructs the reward process of a canonical spec. The
// gaussian kind samples around the shared artifact means; the dynamic kinds
// (gilbert-elliott, shifting) draw their rates, state and noise entirely
// from the noise-seed stream, so replicas with distinct noise seeds are
// fully independent processes over shared topology artifacts.
func BuildSampler(s ScenarioSpec, artifactMeans []float64) (channel.Sampler, error) {
	n, m := s.Topology.N, s.Channel.M
	src := NoiseStream(s.NoiseSeed)
	var (
		inner channel.Sampler
		err   error
	)
	switch s.Channel.Kind {
	case ChannelGaussian:
		inner, err = channel.NewModelWithMeans(
			channel.Config{N: n, M: m, Sigma: s.Channel.Sigma}, artifactMeans, src)
	case ChannelGilbertElliott:
		inner, err = channel.NewGilbertElliott(channel.GEConfig{
			N: n, M: m,
			PGB: s.Channel.PGB, PBG: s.Channel.PBG,
			BadFraction: s.Channel.BadFraction,
			Sigma:       s.Channel.Sigma,
		}, src)
	case ChannelShifting:
		inner, err = channel.NewShifting(channel.ShiftConfig{
			N: n, M: m, Period: s.Channel.Period, Sigma: s.Channel.Sigma,
		}, src)
	default:
		return nil, &KindError{Field: "channel.kind", Kind: s.Channel.Kind, Allowed: channelKinds}
	}
	if err != nil {
		return nil, fmt.Errorf("spec: scenario channels: %w", err)
	}
	if !s.Channel.Primary.Enabled {
		return inner, nil
	}
	wrapped, err := channel.NewWithPrimary(inner, channel.PrimaryConfig{
		PBusy: s.Channel.Primary.PBusy,
		PIdle: s.Channel.Primary.PIdle,
	}, src)
	if err != nil {
		return nil, fmt.Errorf("spec: primary-user wrapper: %w", err)
	}
	return wrapped, nil
}

// BuildPolicy constructs the learning rule of a canonical PolicySpec over k
// arms. l is the strategy-size bound of LLR (the node count N), means are
// the true means the oracle plays (the sampler's current means), and src is
// the stream randomized policies draw from — callers pick it so existing
// stream derivations are preserved (PolicyStream for the serving runtime,
// the historical figure sub-streams for the simulator).
func BuildPolicy(p PolicySpec, k, l int, means []float64, src *rng.Source) (policy.Policy, error) {
	kind := p.Kind
	if kind == "" {
		kind = PolicyZhouLi
	}
	switch kind {
	case PolicyZhouLi:
		return policy.NewZhouLi(k)
	case PolicyLLR:
		return policy.NewLLR(k, l)
	case PolicyCUCB:
		return policy.NewCUCB(k)
	case PolicyOracle:
		return policy.NewOracle(means)
	case PolicyDiscountedZhouLi:
		gamma := p.Gamma
		if gamma == 0 {
			gamma = 0.99
		}
		return policy.NewDiscountedZhouLi(k, gamma)
	case PolicyEpsGreedy:
		eps := p.Epsilon
		if eps == 0 {
			eps = 0.1
		}
		return policy.NewEpsilonGreedy(k, eps, src)
	default:
		return nil, &KindError{Field: "policy.kind", Kind: kind, Allowed: policyKinds}
	}
}

// BuildTiming returns the time model of a canonical DecisionSpec.
func BuildTiming(d DecisionSpec) (timing.Params, error) {
	switch d.Timing {
	case "", TimingPaper:
		return timing.Paper(), nil
	default:
		return timing.Params{}, &KindError{Field: "decision.timing", Kind: d.Timing, Allowed: timingKinds}
	}
}

// Built bundles everything Build constructs from one spec.
type Built struct {
	// Spec is the canonical form everything was built from.
	Spec ScenarioSpec
	// Artifacts are the immutable shareables (network, extended graph,
	// catalog means).
	Artifacts *Artifacts
	// Sampler is the scenario's reward process.
	Sampler channel.Sampler
	// Policy is the scenario's learning rule.
	Policy policy.Policy
	// Timing is the round time model.
	Timing timing.Params
}

// Build is the one-stop serial construction path: canonicalize, build
// artifacts, sampler and policy. The serving runtime composes the same
// pieces through the engine's artifact cache instead; both paths are
// bit-identical by construction (they consume the same streams).
func Build(s ScenarioSpec) (*Built, error) {
	canon, err := s.Canonical()
	if err != nil {
		return nil, err
	}
	arts, err := BuildArtifacts(canon)
	if err != nil {
		return nil, err
	}
	sampler, err := BuildSampler(canon, arts.Means)
	if err != nil {
		return nil, err
	}
	pol, err := BuildPolicy(canon.Policy, arts.Ext.K(), arts.Ext.N, sampler.Means(), PolicyStream(canon.NoiseSeed))
	if err != nil {
		return nil, err
	}
	tp, err := BuildTiming(canon.Decision)
	if err != nil {
		return nil, err
	}
	return &Built{Spec: canon, Artifacts: arts, Sampler: sampler, Policy: pol, Timing: tp}, nil
}
