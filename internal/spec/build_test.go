package spec

import (
	"testing"

	"multihopbandit/internal/channel"
)

// TestBuildDeterministic: two Builds of the same spec produce identical
// artifacts and identical reward sequences — the construction is a pure
// function of the canonical spec.
func TestBuildDeterministic(t *testing.T) {
	for i, s := range testSpecs() {
		a, err := Build(s)
		if err != nil {
			t.Fatalf("spec %d: %v", i, err)
		}
		b, err := Build(s)
		if err != nil {
			t.Fatalf("spec %d: %v", i, err)
		}
		if a.Spec != b.Spec {
			t.Fatalf("spec %d: canonical specs differ", i)
		}
		if len(a.Artifacts.Means) != len(b.Artifacts.Means) {
			t.Fatalf("spec %d: means length differ", i)
		}
		for k := range a.Artifacts.Means {
			if a.Artifacts.Means[k] != b.Artifacts.Means[k] {
				t.Fatalf("spec %d: means[%d] differ", i, k)
			}
		}
		for slot := 0; slot < 50; slot++ {
			arm := slot % a.Sampler.K()
			x, y := a.Sampler.Sample(arm), b.Sampler.Sample(arm)
			if x != y {
				t.Fatalf("spec %d: sample %d diverged: %v vs %v", i, slot, x, y)
			}
			if dyn, ok := a.Sampler.(channel.Dynamic); ok {
				dyn.Tick()
				b.Sampler.(channel.Dynamic).Tick()
			}
		}
		if a.Policy.Name() != b.Policy.Name() {
			t.Fatalf("spec %d: policies differ", i)
		}
	}
}

func TestBuildNetworkKinds(t *testing.T) {
	grid := TopologySpec{Kind: TopologyGrid, Rows: 3, Cols: 4, Spacing: 1.5, Radius: 2}
	nw, err := BuildNetwork(grid, nil)
	if err != nil {
		t.Fatal(err)
	}
	if nw.N() != 12 {
		t.Fatalf("grid N = %d, want 12", nw.N())
	}
	line := TopologySpec{Kind: TopologyLinear, N: 7, Spacing: 1, Radius: 1.5}
	nw, err = BuildNetwork(line, nil)
	if err != nil {
		t.Fatal(err)
	}
	if nw.N() != 7 {
		t.Fatalf("linear N = %d, want 7", nw.N())
	}
	// A linear network with spacing < radius conflicts only with neighbors.
	if nw.G.Degree(0) != 1 || nw.G.Degree(3) != 2 {
		t.Fatalf("linear degrees = %d endpoint, %d interior", nw.G.Degree(0), nw.G.Degree(3))
	}
}

// TestBuildSamplerKinds checks each channel kind (and the primary wrapper)
// materializes the right process type.
func TestBuildSamplerKinds(t *testing.T) {
	base := ScenarioSpec{Seed: 1, Topology: TopologySpec{N: 4}, Channel: ChannelSpec{M: 2}}

	mk := func(mod func(*ScenarioSpec)) channel.Sampler {
		t.Helper()
		s := base
		mod(&s)
		canon, err := s.Canonical()
		if err != nil {
			t.Fatal(err)
		}
		arts, err := BuildArtifacts(canon)
		if err != nil {
			t.Fatal(err)
		}
		sampler, err := BuildSampler(canon, arts.Means)
		if err != nil {
			t.Fatal(err)
		}
		return sampler
	}

	if _, ok := mk(func(*ScenarioSpec) {}).(*channel.Model); !ok {
		t.Fatal("gaussian spec should build a channel.Model")
	}
	if _, ok := mk(func(s *ScenarioSpec) {
		s.Channel.Kind = ChannelGilbertElliott
	}).(*channel.GilbertElliott); !ok {
		t.Fatal("gilbert-elliott spec should build a channel.GilbertElliott")
	}
	if _, ok := mk(func(s *ScenarioSpec) {
		s.Channel.Kind = ChannelShifting
	}).(*channel.Shifting); !ok {
		t.Fatal("shifting spec should build a channel.Shifting")
	}
	wrapped := mk(func(s *ScenarioSpec) {
		s.Channel.Primary = PrimarySpec{Enabled: true}
	})
	if _, ok := wrapped.(*channel.WithPrimary); !ok {
		t.Fatal("primary-enabled spec should build a channel.WithPrimary")
	}
	// The wrapper must still be a Dynamic so the kernel ticks occupancy.
	if _, ok := wrapped.(channel.Dynamic); !ok {
		t.Fatal("primary wrapper should be Dynamic")
	}
}

// TestGaussianSamplerMatchesArtifactMeans: the gaussian process samples
// around the shared artifact means — the invariant the serving runtime's
// artifact sharing depends on.
func TestGaussianSamplerMatchesArtifactMeans(t *testing.T) {
	s, err := ScenarioSpec{Seed: 3, Topology: TopologySpec{N: 4}, Channel: ChannelSpec{M: 2}}.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	arts, err := BuildArtifacts(s)
	if err != nil {
		t.Fatal(err)
	}
	sampler, err := BuildSampler(s, arts.Means)
	if err != nil {
		t.Fatal(err)
	}
	for k, mu := range arts.Means {
		if sampler.Mean(k) != mu {
			t.Fatalf("arm %d: sampler mean %v, artifact mean %v", k, sampler.Mean(k), mu)
		}
	}
}
