// Package spec defines ScenarioSpec, the versioned, JSON-serializable
// description of one channel-access scenario — the single construction
// surface shared by the simulator (internal/sim), the experiment engine's
// artifact cache (internal/engine), and the online serving runtime
// (internal/serve). A spec composes four orthogonal parts:
//
//   - TopologySpec: how the conflict graph arises (random unit-disk
//     placement, a grid, or the paper's §IV-D worst-case line),
//   - ChannelSpec: the reward process (the paper's i.i.d. Gaussian catalog,
//     the restless Gilbert–Elliott chains, or adversarially shifting means),
//     optionally wrapped with per-channel primary-user occupancy,
//   - PolicySpec: the learning rule (the paper's index policy and its
//     baselines), and
//   - DecisionSpec: the distributed decision parameters (ball parameter r,
//     mini-round cap D, update period y, the time model).
//
// Fill canonicalizes a spec in place — defaults applied, version pinned —
// and validates it strictly: unknown kinds, out-of-range values, and fields
// that do not apply to the selected kind are rejected with typed errors
// (KindError, FieldError, VersionError). Parse additionally rejects unknown
// JSON fields. Two specs describe the same scenario exactly when their
// canonical forms are equal (specs are comparable Go values), which is what
// lets the engine's artifact cache key shared artifacts by spec.
//
// Like every Config.fill in this repository, v1 uses the zero value to mean
// "use the default" on numeric fields (sigma, target_degree, p_gb, p_bg,
// bad_fraction, epsilon, gamma, p_busy, p_idle, period): an explicit 0 in a
// spec file canonicalizes to the documented default rather than to zero, so
// v1 cannot express, e.g., a Gilbert–Elliott chain that never degrades
// (p_gb exactly 0) or a pure-greedy ε=0 policy. Scenarios needing an exact
// zero must wait for a schema revision; do not change this convention
// within v1 — it would silently re-read existing spec files.
//
// Canonicalization is part of the repository's bit-identity contract: the
// canonical spec alone determines every random stream the builders consume
// (see build.go), so equal canonical specs always produce bit-identical
// trajectories, and the legacy flat serve.InstanceConfig maps onto a spec
// without changing any stream derivation.
package spec

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// Version is the ScenarioSpec schema version this package implements.
const Version = 1

// Topology kinds.
const (
	TopologyRandom = "random"
	TopologyGrid   = "grid"
	TopologyLinear = "linear"
)

// Channel kinds.
const (
	ChannelGaussian       = "gaussian"
	ChannelGilbertElliott = "gilbert-elliott"
	ChannelShifting       = "shifting"
)

// Policy kinds.
const (
	PolicyZhouLi           = "zhou-li"
	PolicyLLR              = "llr"
	PolicyCUCB             = "cucb"
	PolicyOracle           = "oracle"
	PolicyDiscountedZhouLi = "discounted-zhou-li"
	PolicyEpsGreedy        = "eps-greedy"
)

// Timing kinds.
const (
	TimingPaper = "paper"
)

// Decision execution kinds: the lock-step in-process decider, or the
// concurrent per-vertex agent runtime (internal/distnet).
const (
	ExecutionDecider = "decider"
	ExecutionDistnet = "distnet"
)

// Distnet transport kinds.
const (
	TransportChan = "chan"
	TransportTCP  = "tcp"
)

// Fsync policies of PersistSpec. They mirror internal/wal's SyncPolicy
// values; spec stays dependency-free and the serving runtime converts.
const (
	FsyncAlways = "always"
	FsyncBatch  = "batch"
	FsyncNone   = "none"
)

// topologyKinds, channelKinds, policyKinds and timingKinds list the known
// values for KindError reporting.
var (
	topologyKinds = []string{TopologyRandom, TopologyGrid, TopologyLinear}
	channelKinds  = []string{ChannelGaussian, ChannelGilbertElliott, ChannelShifting}
	policyKinds   = []string{
		PolicyZhouLi, PolicyLLR, PolicyCUCB, PolicyOracle,
		PolicyDiscountedZhouLi, PolicyEpsGreedy,
	}
	timingKinds    = []string{TimingPaper}
	fsyncKinds     = []string{FsyncAlways, FsyncBatch, FsyncNone}
	executionKinds = []string{ExecutionDecider, ExecutionDistnet}
	transportKinds = []string{TransportChan, TransportTCP}
)

// VersionError reports a spec whose version field names a schema this
// package does not implement.
type VersionError struct {
	// Got is the rejected version value.
	Got int
}

func (e *VersionError) Error() string {
	return fmt.Sprintf("spec: unsupported version %d (want %d)", e.Got, Version)
}

// KindError reports an unknown kind in one of the spec's enum fields.
type KindError struct {
	// Field is the spec field path, e.g. "channel.kind".
	Field string
	// Kind is the rejected value.
	Kind string
	// Allowed lists the known kinds.
	Allowed []string
}

func (e *KindError) Error() string {
	return fmt.Sprintf("spec: unknown %s %q (want %s)", e.Field, e.Kind, strings.Join(e.Allowed, ", "))
}

// FieldError reports an invalid field value, a field that does not apply to
// the selected kind, or an unknown JSON field.
type FieldError struct {
	// Field is the spec field path, e.g. "channel.period".
	Field string
	// Reason says what is wrong with it.
	Reason string
}

func (e *FieldError) Error() string {
	return fmt.Sprintf("spec: %s: %s", e.Field, e.Reason)
}

// TopologySpec describes how the network's conflict graph is constructed.
// Exactly the fields that apply to the selected kind may be set; the rest
// must stay zero (Fill rejects strays, so a canonical spec carries no dead
// configuration).
type TopologySpec struct {
	// Kind selects the layout: "random" (default), "grid" or "linear".
	Kind string `json:"kind,omitempty"`
	// N is the node count. Required for random and linear; for grid it is
	// derived as Rows·Cols (and must match when explicitly set).
	N int `json:"n,omitempty"`
	// TargetDegree sizes the random deployment square (random only;
	// default 6, a sparse multi-hop network).
	TargetDegree float64 `json:"target_degree,omitempty"`
	// RequireConnected retries random placement until the conflict graph
	// connects (random only).
	RequireConnected bool `json:"require_connected,omitempty"`
	// Rows and Cols are the grid dimensions (grid only; required).
	Rows int `json:"rows,omitempty"`
	Cols int `json:"cols,omitempty"`
	// Spacing is the distance between adjacent nodes (grid default 1.5,
	// linear default 1).
	Spacing float64 `json:"spacing,omitempty"`
	// Radius is the conflict radius (grid default 2, linear default 1.5).
	Radius float64 `json:"radius,omitempty"`
}

func (t *TopologySpec) fill() error {
	if t.Kind == "" {
		t.Kind = TopologyRandom
	}
	switch t.Kind {
	case TopologyRandom:
		if t.N <= 0 {
			return &FieldError{Field: "topology.n", Reason: fmt.Sprintf("must be positive, got %d", t.N)}
		}
		if t.TargetDegree < 0 {
			return &FieldError{Field: "topology.target_degree", Reason: fmt.Sprintf("must be non-negative, got %v", t.TargetDegree)}
		}
		if t.TargetDegree == 0 {
			t.TargetDegree = 6
		}
		if t.Rows != 0 || t.Cols != 0 {
			return &FieldError{Field: "topology.rows/cols", Reason: "only apply to kind " + TopologyGrid}
		}
		if t.Spacing != 0 || t.Radius != 0 {
			return &FieldError{Field: "topology.spacing/radius", Reason: "do not apply to kind " + TopologyRandom}
		}
	case TopologyGrid:
		if t.Rows <= 0 || t.Cols <= 0 {
			return &FieldError{Field: "topology.rows/cols", Reason: fmt.Sprintf("must be positive, got %dx%d", t.Rows, t.Cols)}
		}
		if t.N == 0 {
			t.N = t.Rows * t.Cols
		}
		if t.N != t.Rows*t.Cols {
			return &FieldError{Field: "topology.n", Reason: fmt.Sprintf("%d does not match rows·cols = %d", t.N, t.Rows*t.Cols)}
		}
		if err := t.fillGeometry(1.5, 2); err != nil {
			return err
		}
		if t.TargetDegree != 0 || t.RequireConnected {
			return &FieldError{Field: "topology.target_degree/require_connected", Reason: "only apply to kind " + TopologyRandom}
		}
	case TopologyLinear:
		if t.N <= 0 {
			return &FieldError{Field: "topology.n", Reason: fmt.Sprintf("must be positive, got %d", t.N)}
		}
		if t.Rows != 0 || t.Cols != 0 {
			return &FieldError{Field: "topology.rows/cols", Reason: "only apply to kind " + TopologyGrid}
		}
		if err := t.fillGeometry(1, 1.5); err != nil {
			return err
		}
		if t.TargetDegree != 0 || t.RequireConnected {
			return &FieldError{Field: "topology.target_degree/require_connected", Reason: "only apply to kind " + TopologyRandom}
		}
	default:
		return &KindError{Field: "topology.kind", Kind: t.Kind, Allowed: topologyKinds}
	}
	return nil
}

func (t *TopologySpec) fillGeometry(defSpacing, defRadius float64) error {
	if t.Spacing < 0 {
		return &FieldError{Field: "topology.spacing", Reason: fmt.Sprintf("must be positive, got %v", t.Spacing)}
	}
	if t.Radius < 0 {
		return &FieldError{Field: "topology.radius", Reason: fmt.Sprintf("must be positive, got %v", t.Radius)}
	}
	if t.Spacing == 0 {
		t.Spacing = defSpacing
	}
	if t.Radius == 0 {
		t.Radius = defRadius
	}
	return nil
}

// PrimarySpec wraps the channel process with per-channel primary-user
// occupancy: while a channel's primary user is active, every secondary
// transmission on it yields zero reward (the cognitive-radio mechanism of
// the paper's introduction).
type PrimarySpec struct {
	// Enabled switches the wrapper on.
	Enabled bool `json:"enabled,omitempty"`
	// PBusy is the per-slot idle→busy probability (default 0.05).
	PBusy float64 `json:"p_busy,omitempty"`
	// PIdle is the per-slot busy→idle probability (default 0.2).
	PIdle float64 `json:"p_idle,omitempty"`
}

// ChannelSpec describes the reward process the learners face.
type ChannelSpec struct {
	// Kind selects the process family: "gaussian" (default, the paper's
	// i.i.d. model), "gilbert-elliott" or "shifting".
	Kind string `json:"kind,omitempty"`
	// M is the number of channels per node. Required.
	M int `json:"m"`
	// Sigma is the per-draw observation noise (default 0.05; 0.02 for
	// gilbert-elliott, matching the model's own default).
	Sigma float64 `json:"sigma,omitempty"`
	// PGB and PBG are the Gilbert–Elliott good→bad and bad→good per-slot
	// transition probabilities (defaults 0.1 and 0.3).
	PGB float64 `json:"p_gb,omitempty"`
	PBG float64 `json:"p_bg,omitempty"`
	// BadFraction scales the bad-state rate relative to the good rate
	// (gilbert-elliott only, default 0.2).
	BadFraction float64 `json:"bad_fraction,omitempty"`
	// Period is the number of slots between mean permutations (shifting
	// only, default 200).
	Period int `json:"period,omitempty"`
	// Primary optionally wraps the process with primary-user occupancy.
	Primary PrimarySpec `json:"primary,omitempty"`
}

func (c *ChannelSpec) fill() error {
	if c.Kind == "" {
		c.Kind = ChannelGaussian
	}
	if c.M <= 0 {
		return &FieldError{Field: "channel.m", Reason: fmt.Sprintf("must be positive, got %d", c.M)}
	}
	if c.Sigma < 0 {
		return &FieldError{Field: "channel.sigma", Reason: fmt.Sprintf("must be non-negative, got %v", c.Sigma)}
	}
	switch c.Kind {
	case ChannelGaussian:
		if c.Sigma == 0 {
			c.Sigma = 0.05
		}
		if c.PGB != 0 || c.PBG != 0 || c.BadFraction != 0 {
			return &FieldError{Field: "channel.p_gb/p_bg/bad_fraction", Reason: "only apply to kind " + ChannelGilbertElliott}
		}
		if c.Period != 0 {
			return &FieldError{Field: "channel.period", Reason: "only applies to kind " + ChannelShifting}
		}
	case ChannelGilbertElliott:
		if c.Sigma == 0 {
			c.Sigma = 0.02
		}
		if c.PGB == 0 {
			c.PGB = 0.1
		}
		if c.PBG == 0 {
			c.PBG = 0.3
		}
		if c.PGB < 0 || c.PGB > 1 || c.PBG < 0 || c.PBG > 1 {
			return &FieldError{Field: "channel.p_gb/p_bg", Reason: fmt.Sprintf("must be in [0,1], got %v/%v", c.PGB, c.PBG)}
		}
		if c.BadFraction == 0 {
			c.BadFraction = 0.2
		}
		if c.BadFraction < 0 || c.BadFraction > 1 {
			return &FieldError{Field: "channel.bad_fraction", Reason: fmt.Sprintf("must be in [0,1], got %v", c.BadFraction)}
		}
		if c.Period != 0 {
			return &FieldError{Field: "channel.period", Reason: "only applies to kind " + ChannelShifting}
		}
	case ChannelShifting:
		if c.Sigma == 0 {
			c.Sigma = 0.05
		}
		if c.Period < 0 {
			return &FieldError{Field: "channel.period", Reason: fmt.Sprintf("must be positive, got %d", c.Period)}
		}
		if c.Period == 0 {
			c.Period = 200
		}
		if c.PGB != 0 || c.PBG != 0 || c.BadFraction != 0 {
			return &FieldError{Field: "channel.p_gb/p_bg/bad_fraction", Reason: "only apply to kind " + ChannelGilbertElliott}
		}
	default:
		return &KindError{Field: "channel.kind", Kind: c.Kind, Allowed: channelKinds}
	}
	if !c.Primary.Enabled {
		if c.Primary.PBusy != 0 || c.Primary.PIdle != 0 {
			return &FieldError{Field: "channel.primary", Reason: "p_busy/p_idle set but enabled is false"}
		}
		return nil
	}
	if c.Primary.PBusy == 0 {
		c.Primary.PBusy = 0.05
	}
	if c.Primary.PIdle == 0 {
		c.Primary.PIdle = 0.2
	}
	if c.Primary.PBusy < 0 || c.Primary.PBusy > 1 || c.Primary.PIdle < 0 || c.Primary.PIdle > 1 {
		return &FieldError{Field: "channel.primary", Reason: fmt.Sprintf("p_busy/p_idle must be in [0,1], got %v/%v", c.Primary.PBusy, c.Primary.PIdle)}
	}
	return nil
}

// PolicySpec selects the learning rule.
type PolicySpec struct {
	// Kind selects the rule: "zhou-li" (default, the paper's equation (3)),
	// "llr", "cucb", "oracle", "discounted-zhou-li" or "eps-greedy".
	Kind string `json:"kind,omitempty"`
	// Gamma is the discount factor of "discounted-zhou-li" (default 0.99).
	Gamma float64 `json:"gamma,omitempty"`
	// Epsilon is the exploration probability of "eps-greedy" (default 0.1).
	Epsilon float64 `json:"epsilon,omitempty"`
}

func (p *PolicySpec) fill() error {
	if p.Kind == "" {
		p.Kind = PolicyZhouLi
	}
	known := false
	for _, k := range policyKinds {
		if p.Kind == k {
			known = true
			break
		}
	}
	if !known {
		return &KindError{Field: "policy.kind", Kind: p.Kind, Allowed: policyKinds}
	}
	if p.Kind == PolicyDiscountedZhouLi {
		if p.Gamma == 0 {
			p.Gamma = 0.99
		}
		if p.Gamma <= 0 || p.Gamma > 1 {
			return &FieldError{Field: "policy.gamma", Reason: fmt.Sprintf("must be in (0,1], got %v", p.Gamma)}
		}
	} else if p.Gamma != 0 {
		return &FieldError{Field: "policy.gamma", Reason: "only applies to kind " + PolicyDiscountedZhouLi}
	}
	if p.Kind == PolicyEpsGreedy {
		if p.Epsilon == 0 {
			p.Epsilon = 0.1
		}
		if p.Epsilon < 0 || p.Epsilon > 1 {
			return &FieldError{Field: "policy.epsilon", Reason: fmt.Sprintf("must be in [0,1], got %v", p.Epsilon)}
		}
	} else if p.Epsilon != 0 {
		return &FieldError{Field: "policy.epsilon", Reason: "only applies to kind " + PolicyEpsGreedy}
	}
	return nil
}

// DecisionSpec configures the distributed strategy decision and its cadence.
type DecisionSpec struct {
	// R is the ball parameter r of the distributed PTAS (default 2).
	R int `json:"r,omitempty"`
	// D caps mini-rounds per strategy decision (default 4).
	D int `json:"d,omitempty"`
	// UpdateEvery is the update period y in slots (default 1).
	UpdateEvery int `json:"update_every,omitempty"`
	// Timing names the round time model; "paper" (the Table II parameters)
	// is the only v1 value.
	Timing string `json:"timing,omitempty"`
	// Execution selects how decisions run: "decider" (default; lock-step
	// in-process) or "distnet" (one concurrent agent per extended-graph
	// vertex exchanging frames over a transport). Execution is operational,
	// not scenario identity — it never enters the ArtifactKey, and with no
	// faults configured "distnet" produces winner sets bit-identical to
	// "decider".
	Execution string `json:"execution,omitempty"`
	// Transport selects the distnet frame carrier: "chan" (default;
	// in-process) or "tcp" (real loopback sockets). Only valid with
	// execution "distnet".
	Transport string `json:"transport,omitempty"`
	// Faults configures distnet fault injection. Only valid with execution
	// "distnet"; the zero value injects nothing.
	Faults FaultsSpec `json:"faults,omitempty"`
}

// FaultsSpec configures the distnet fault layer. It is a plain comparable
// value mirroring distnet.Faults, with durations in microseconds so specs
// stay integer-friendly JSON.
type FaultsSpec struct {
	// Seed keys every fault draw; 0 means "use the scenario's NoiseSeed".
	Seed int64 `json:"seed,omitempty"`
	// Loss is the independent per-copy loss probability in [0,1).
	Loss float64 `json:"loss,omitempty"`
	// BurstEnter and BurstExit drive the per-link Gilbert loss chain;
	// BurstEnter 0 disables it, and a nonzero BurstEnter requires a
	// nonzero BurstExit.
	BurstEnter float64 `json:"burst_enter,omitempty"`
	BurstExit  float64 `json:"burst_exit,omitempty"`
	// LatencyUs is the fixed one-way copy delay in microseconds.
	LatencyUs int64 `json:"latency_us,omitempty"`
	// JitterUs adds an identity-keyed uniform [0,JitterUs) delay.
	JitterUs int64 `json:"jitter_us,omitempty"`
	// Reorder is the probability a copy is held back behind later traffic.
	Reorder float64 `json:"reorder,omitempty"`
}

// Active reports whether any fault is configured.
func (f FaultsSpec) Active() bool {
	return f.Loss > 0 || f.BurstEnter > 0 || f.LatencyUs > 0 || f.JitterUs > 0 || f.Reorder > 0
}

func (f *FaultsSpec) fill() error {
	if f.Loss < 0 || f.Loss >= 1 {
		return &FieldError{Field: "decision.faults.loss", Reason: fmt.Sprintf("must be in [0,1), got %v", f.Loss)}
	}
	if f.BurstEnter < 0 || f.BurstEnter >= 1 {
		return &FieldError{Field: "decision.faults.burst_enter", Reason: fmt.Sprintf("must be in [0,1), got %v", f.BurstEnter)}
	}
	if f.BurstExit < 0 || f.BurstExit > 1 {
		return &FieldError{Field: "decision.faults.burst_exit", Reason: fmt.Sprintf("must be in [0,1], got %v", f.BurstExit)}
	}
	if f.BurstEnter > 0 && f.BurstExit == 0 {
		return &FieldError{Field: "decision.faults.burst_exit", Reason: "must be positive when burst_enter is set (bursts would never end)"}
	}
	if f.BurstEnter == 0 && f.BurstExit != 0 {
		return &FieldError{Field: "decision.faults.burst_exit", Reason: "only applies when burst_enter is set"}
	}
	if f.LatencyUs < 0 {
		return &FieldError{Field: "decision.faults.latency_us", Reason: fmt.Sprintf("must be >= 0, got %d", f.LatencyUs)}
	}
	if f.JitterUs < 0 {
		return &FieldError{Field: "decision.faults.jitter_us", Reason: fmt.Sprintf("must be >= 0, got %d", f.JitterUs)}
	}
	if f.Reorder < 0 || f.Reorder >= 1 {
		return &FieldError{Field: "decision.faults.reorder", Reason: fmt.Sprintf("must be in [0,1), got %v", f.Reorder)}
	}
	return nil
}

func (d *DecisionSpec) fill() error {
	if d.R == 0 {
		d.R = 2
	}
	if d.R < 1 {
		return &FieldError{Field: "decision.r", Reason: fmt.Sprintf("must be >= 1, got %d", d.R)}
	}
	if d.D == 0 {
		d.D = 4
	}
	if d.D < 0 {
		return &FieldError{Field: "decision.d", Reason: fmt.Sprintf("must be >= 0, got %d", d.D)}
	}
	if d.UpdateEvery == 0 {
		d.UpdateEvery = 1
	}
	if d.UpdateEvery < 1 {
		return &FieldError{Field: "decision.update_every", Reason: fmt.Sprintf("must be >= 1, got %d", d.UpdateEvery)}
	}
	if d.Timing == "" {
		d.Timing = TimingPaper
	}
	if d.Timing != TimingPaper {
		return &KindError{Field: "decision.timing", Kind: d.Timing, Allowed: timingKinds}
	}
	if d.Execution == "" {
		d.Execution = ExecutionDecider
	}
	switch d.Execution {
	case ExecutionDecider, ExecutionDistnet:
	default:
		return &KindError{Field: "decision.execution", Kind: d.Execution, Allowed: executionKinds}
	}
	if d.Execution == ExecutionDecider {
		if d.Transport != "" {
			return &FieldError{Field: "decision.transport", Reason: "only applies to execution " + ExecutionDistnet}
		}
		if d.Faults != (FaultsSpec{}) {
			return &FieldError{Field: "decision.faults", Reason: "only applies to execution " + ExecutionDistnet}
		}
		return nil
	}
	if d.Transport == "" {
		d.Transport = TransportChan
	}
	switch d.Transport {
	case TransportChan, TransportTCP:
	default:
		return &KindError{Field: "decision.transport", Kind: d.Transport, Allowed: transportKinds}
	}
	return d.Faults.fill()
}

// PersistSpec opts one instance into the serving runtime's durability layer
// (internal/wal): observations are appended to a per-instance write-ahead
// log and learner snapshots are taken periodically, so a banditd restart
// recovers the instance bit-identically via snapshot + log-tail replay.
//
// Persist is operational configuration, not scenario identity: it changes
// no random stream and no trajectory, it does not contribute to the
// ArtifactKey, and it is silently inert when the server runs without a data
// directory. Policies without snapshot support (eps-greedy) persist the log
// only; the runtime keeps every segment for them and recovery replays from
// slot 0, regardless of SnapshotEvery/KeepLog.
type PersistSpec struct {
	// Enabled switches persistence on for this instance. A banditd started
	// with -persist-all persists every instance regardless.
	Enabled bool `json:"enabled,omitempty"`
	// SnapshotEvery is the snapshot cadence in applied slots (default 512).
	SnapshotEvery int `json:"snapshot_every,omitempty"`
	// Fsync names the WAL sync policy: "always", "batch" (default; sync once
	// per applied request batch) or "none".
	Fsync string `json:"fsync,omitempty"`
	// KeepLog retains superseded WAL segments after a snapshot makes them
	// redundant (for record/replay); by default they are garbage-collected.
	KeepLog bool `json:"keep_log,omitempty"`
}

func (p *PersistSpec) fill() error {
	if !p.Enabled {
		if p.SnapshotEvery != 0 || p.Fsync != "" || p.KeepLog {
			return &FieldError{Field: "persist", Reason: "snapshot_every/fsync/keep_log set but enabled is false"}
		}
		return nil
	}
	if p.SnapshotEvery < 0 {
		return &FieldError{Field: "persist.snapshot_every", Reason: fmt.Sprintf("must be positive, got %d", p.SnapshotEvery)}
	}
	if p.SnapshotEvery == 0 {
		p.SnapshotEvery = 512
	}
	if p.Fsync == "" {
		p.Fsync = FsyncBatch
	}
	switch p.Fsync {
	case FsyncAlways, FsyncBatch, FsyncNone:
	default:
		return &KindError{Field: "persist.fsync", Kind: p.Fsync, Allowed: fsyncKinds}
	}
	return nil
}

// ScenarioSpec is the versioned description of one scenario. It is a plain
// comparable value: two canonical specs are equal with == exactly when they
// describe the same scenario.
type ScenarioSpec struct {
	// V is the schema version; 0 canonicalizes to Version, anything else
	// but Version is rejected.
	V int `json:"v"`
	// Seed draws the scenario artifacts: topology placement and the true
	// channel means.
	Seed int64 `json:"seed"`
	// NoiseSeed drives the per-instance stochastic streams (channel noise,
	// dynamic channel state, randomized policies); 0 means "use Seed". Give
	// replicas sharing one artifact Seed distinct NoiseSeeds to get
	// distinct reward trajectories.
	NoiseSeed int64 `json:"noise_seed,omitempty"`
	// Topology, Channel, Policy and Decision are the four scenario parts.
	Topology TopologySpec `json:"topology"`
	Channel  ChannelSpec  `json:"channel"`
	Policy   PolicySpec   `json:"policy"`
	Decision DecisionSpec `json:"decision"`
	// Persist opts the instance into the serving runtime's durability layer.
	// Operational only: it affects no stream, trajectory, or artifact key.
	Persist PersistSpec `json:"persist,omitempty"`
}

// Fill canonicalizes the spec in place — version pinned, defaults applied —
// and validates it strictly. Unknown kinds, out-of-range values, and fields
// that do not apply to the selected kinds are rejected with typed errors.
// Fill is idempotent: filling an already-canonical spec is a no-op.
func (s *ScenarioSpec) Fill() error {
	if s.V == 0 {
		s.V = Version
	}
	if s.V != Version {
		return &VersionError{Got: s.V}
	}
	if s.NoiseSeed == 0 {
		s.NoiseSeed = s.Seed
	}
	if err := s.Topology.fill(); err != nil {
		return err
	}
	if err := s.Channel.fill(); err != nil {
		return err
	}
	if err := s.Policy.fill(); err != nil {
		return err
	}
	if err := s.Decision.fill(); err != nil {
		return err
	}
	return s.Persist.fill()
}

// Canonical returns the canonical form of the spec without mutating the
// receiver.
func (s ScenarioSpec) Canonical() (ScenarioSpec, error) {
	c := s
	if err := c.Fill(); err != nil {
		return ScenarioSpec{}, err
	}
	return c, nil
}

// ArtifactKey is the projection of a canonical spec that determines the
// shareable immutable artifacts — the network, the extended conflict graph,
// and the catalog channel means. Specs that differ only in channel dynamics,
// policy, decision parameters or noise seed map to the same key, which is
// how the engine's cache shares artifacts across all channel kinds.
type ArtifactKey struct {
	Topology TopologySpec
	M        int
	Seed     int64
}

// ArtifactKey returns the artifact projection. Call it on a canonical spec;
// non-canonical specs of the same scenario may yield distinct keys.
func (s ScenarioSpec) ArtifactKey() ArtifactKey {
	return ArtifactKey{Topology: s.Topology, M: s.Channel.M, Seed: s.Seed}
}

// Parse strictly decodes a JSON scenario spec — unknown fields are rejected
// with a FieldError — and returns its canonical form.
func Parse(data []byte) (ScenarioSpec, error) {
	var s ScenarioSpec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		if name, ok := unknownFieldName(err); ok {
			return ScenarioSpec{}, &FieldError{Field: name, Reason: "unknown field"}
		}
		return ScenarioSpec{}, fmt.Errorf("spec: decode: %w", err)
	}
	return s.Canonical()
}

// ParseFile reads and parses a spec file.
func ParseFile(path string) (ScenarioSpec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return ScenarioSpec{}, fmt.Errorf("spec: read %s: %w", path, err)
	}
	s, err := Parse(data)
	if err != nil {
		return ScenarioSpec{}, fmt.Errorf("spec: %s: %w", path, err)
	}
	return s, nil
}

// unknownFieldName extracts the field name from encoding/json's unknown-field
// error so Parse can surface it as a typed FieldError.
func unknownFieldName(err error) (string, bool) {
	const marker = `unknown field "`
	msg := err.Error()
	i := strings.Index(msg, marker)
	if i < 0 {
		return "", false
	}
	rest := msg[i+len(marker):]
	j := strings.Index(rest, `"`)
	if j < 0 {
		return "", false
	}
	return rest[:j], true
}
