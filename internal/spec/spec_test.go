package spec

import (
	"encoding/json"
	"errors"
	"testing"
)

// testSpecs covers every topology, channel and policy kind plus the primary
// wrapper — the matrix round-trip and canonicalization tests sweep.
func testSpecs() []ScenarioSpec {
	return []ScenarioSpec{
		{
			Seed:     1,
			Topology: TopologySpec{N: 10, RequireConnected: true},
			Channel:  ChannelSpec{M: 2},
		},
		{
			Seed:      2,
			NoiseSeed: 22,
			Topology:  TopologySpec{Kind: TopologyGrid, Rows: 3, Cols: 4},
			Channel:   ChannelSpec{Kind: ChannelGilbertElliott, M: 3, PGB: 0.2},
			Policy:    PolicySpec{Kind: PolicyEpsGreedy, Epsilon: 0.2},
			Decision:  DecisionSpec{UpdateEvery: 4},
		},
		{
			Seed:     3,
			Topology: TopologySpec{Kind: TopologyLinear, N: 8, Spacing: 2, Radius: 2.5},
			Channel:  ChannelSpec{Kind: ChannelShifting, M: 2, Period: 50},
			Policy:   PolicySpec{Kind: PolicyDiscountedZhouLi, Gamma: 0.95},
			Decision: DecisionSpec{R: 3, D: 6},
		},
		{
			Seed:     4,
			Topology: TopologySpec{N: 6},
			Channel: ChannelSpec{
				M:       2,
				Primary: PrimarySpec{Enabled: true, PBusy: 0.1},
			},
			Policy: PolicySpec{Kind: PolicyOracle},
		},
		{
			Seed:     5,
			Topology: TopologySpec{N: 6},
			Channel:  ChannelSpec{M: 2},
			Policy:   PolicySpec{Kind: PolicyLLR},
		},
		{
			Seed:     6,
			Topology: TopologySpec{N: 6},
			Channel:  ChannelSpec{M: 2},
			Policy:   PolicySpec{Kind: PolicyCUCB},
		},
		{
			Seed:     7,
			Topology: TopologySpec{N: 6},
			Channel:  ChannelSpec{M: 2},
			Persist:  PersistSpec{Enabled: true, SnapshotEvery: 64, KeepLog: true},
		},
		{
			Seed:     8,
			Topology: TopologySpec{N: 6},
			Channel:  ChannelSpec{M: 2},
			Decision: DecisionSpec{
				Execution: ExecutionDistnet,
				Transport: TransportTCP,
				Faults:    FaultsSpec{Seed: 3, Loss: 0.1, BurstEnter: 0.05, BurstExit: 0.5, LatencyUs: 200, JitterUs: 100, Reorder: 0.02},
			},
		},
	}
}

// TestRoundTripIdempotent is the spec round-trip contract: JSON
// marshal → unmarshal → Fill reproduces the canonical spec exactly, and
// filling a canonical spec is a no-op.
func TestRoundTripIdempotent(t *testing.T) {
	for i, s := range testSpecs() {
		canon, err := s.Canonical()
		if err != nil {
			t.Fatalf("spec %d: %v", i, err)
		}
		blob, err := json.Marshal(canon)
		if err != nil {
			t.Fatalf("spec %d: marshal: %v", i, err)
		}
		var back ScenarioSpec
		if err := json.Unmarshal(blob, &back); err != nil {
			t.Fatalf("spec %d: unmarshal: %v", i, err)
		}
		if err := back.Fill(); err != nil {
			t.Fatalf("spec %d: refill: %v", i, err)
		}
		if back != canon {
			t.Fatalf("spec %d: round trip diverged:\n got %+v\nwant %+v", i, back, canon)
		}
		// Fill is idempotent.
		again := canon
		if err := again.Fill(); err != nil {
			t.Fatalf("spec %d: second fill: %v", i, err)
		}
		if again != canon {
			t.Fatalf("spec %d: fill not idempotent:\n got %+v\nwant %+v", i, again, canon)
		}
		// Parse agrees with unmarshal+Fill.
		parsed, err := Parse(blob)
		if err != nil {
			t.Fatalf("spec %d: parse: %v", i, err)
		}
		if parsed != canon {
			t.Fatalf("spec %d: parse diverged", i)
		}
	}
}

func TestFillDefaults(t *testing.T) {
	s := ScenarioSpec{
		Seed:     9,
		Topology: TopologySpec{N: 5},
		Channel:  ChannelSpec{M: 2},
	}
	if err := s.Fill(); err != nil {
		t.Fatal(err)
	}
	if s.V != Version || s.NoiseSeed != 9 {
		t.Fatalf("root defaults: %+v", s)
	}
	if s.Topology.Kind != TopologyRandom || s.Topology.TargetDegree != 6 {
		t.Fatalf("topology defaults: %+v", s.Topology)
	}
	if s.Channel.Kind != ChannelGaussian || s.Channel.Sigma != 0.05 {
		t.Fatalf("channel defaults: %+v", s.Channel)
	}
	if s.Policy.Kind != PolicyZhouLi {
		t.Fatalf("policy defaults: %+v", s.Policy)
	}
	if s.Decision != (DecisionSpec{R: 2, D: 4, UpdateEvery: 1, Timing: TimingPaper, Execution: ExecutionDecider}) {
		t.Fatalf("decision defaults: %+v", s.Decision)
	}

	ge := ScenarioSpec{
		Topology: TopologySpec{Kind: TopologyGrid, Rows: 2, Cols: 3},
		Channel:  ChannelSpec{Kind: ChannelGilbertElliott, M: 2},
	}
	if err := ge.Fill(); err != nil {
		t.Fatal(err)
	}
	if ge.Topology.N != 6 || ge.Topology.Spacing != 1.5 || ge.Topology.Radius != 2 {
		t.Fatalf("grid defaults: %+v", ge.Topology)
	}
	if ge.Channel.Sigma != 0.02 || ge.Channel.PGB != 0.1 || ge.Channel.PBG != 0.3 || ge.Channel.BadFraction != 0.2 {
		t.Fatalf("gilbert-elliott defaults: %+v", ge.Channel)
	}

	shift := ScenarioSpec{
		Topology: TopologySpec{Kind: TopologyLinear, N: 4},
		Channel:  ChannelSpec{Kind: ChannelShifting, M: 2},
	}
	if err := shift.Fill(); err != nil {
		t.Fatal(err)
	}
	if shift.Topology.Spacing != 1 || shift.Topology.Radius != 1.5 {
		t.Fatalf("linear defaults: %+v", shift.Topology)
	}
	if shift.Channel.Period != 200 || shift.Channel.Sigma != 0.05 {
		t.Fatalf("shifting defaults: %+v", shift.Channel)
	}
}

// TestPersistDefaults: persistence canonicalizes like every other part —
// defaults applied when enabled, all-zero when disabled — and never leaks
// into the artifact projection.
func TestPersistDefaults(t *testing.T) {
	s := ScenarioSpec{
		Topology: TopologySpec{N: 5},
		Channel:  ChannelSpec{M: 2},
		Persist:  PersistSpec{Enabled: true},
	}
	if err := s.Fill(); err != nil {
		t.Fatal(err)
	}
	if s.Persist != (PersistSpec{Enabled: true, SnapshotEvery: 512, Fsync: FsyncBatch}) {
		t.Fatalf("persist defaults: %+v", s.Persist)
	}

	plain := ScenarioSpec{Seed: 1, Topology: TopologySpec{N: 5}, Channel: ChannelSpec{M: 2}}
	durable := plain
	durable.Persist = PersistSpec{Enabled: true, Fsync: FsyncAlways, KeepLog: true}
	a, err := plain.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	b, err := durable.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if a.ArtifactKey() != b.ArtifactKey() {
		t.Fatalf("persist leaked into artifact key:\n %+v\n %+v", a.ArtifactKey(), b.ArtifactKey())
	}
}

func TestUnknownKindsTyped(t *testing.T) {
	cases := []struct {
		name  string
		mod   func(*ScenarioSpec)
		field string
	}{
		{"topology", func(s *ScenarioSpec) { s.Topology.Kind = "torus" }, "topology.kind"},
		{"channel", func(s *ScenarioSpec) { s.Channel.Kind = "rayleigh" }, "channel.kind"},
		{"policy", func(s *ScenarioSpec) { s.Policy.Kind = "thompson" }, "policy.kind"},
		{"timing", func(s *ScenarioSpec) { s.Decision.Timing = "fast" }, "decision.timing"},
		{"fsync", func(s *ScenarioSpec) { s.Persist = PersistSpec{Enabled: true, Fsync: "sometimes"} }, "persist.fsync"},
		{"execution", func(s *ScenarioSpec) { s.Decision.Execution = "quantum" }, "decision.execution"},
		{"transport", func(s *ScenarioSpec) {
			s.Decision.Execution = ExecutionDistnet
			s.Decision.Transport = "udp"
		}, "decision.transport"},
	}
	for _, tc := range cases {
		s := ScenarioSpec{Topology: TopologySpec{N: 5}, Channel: ChannelSpec{M: 2}}
		tc.mod(&s)
		err := s.Fill()
		var ke *KindError
		if !errors.As(err, &ke) {
			t.Fatalf("%s: err = %v, want KindError", tc.name, err)
		}
		if ke.Field != tc.field || len(ke.Allowed) == 0 {
			t.Fatalf("%s: KindError = %+v", tc.name, ke)
		}
	}
}

func TestVersionRejected(t *testing.T) {
	s := ScenarioSpec{V: 2, Topology: TopologySpec{N: 5}, Channel: ChannelSpec{M: 2}}
	err := s.Fill()
	var ve *VersionError
	if !errors.As(err, &ve) || ve.Got != 2 {
		t.Fatalf("err = %v, want VersionError{2}", err)
	}
}

// TestInapplicableFieldsRejected: canonical specs carry no dead
// configuration — fields of a non-selected kind are errors, not silently
// ignored.
func TestInapplicableFieldsRejected(t *testing.T) {
	cases := []func(*ScenarioSpec){
		func(s *ScenarioSpec) { s.Topology.Rows = 2 },                         // rows on random
		func(s *ScenarioSpec) { s.Topology.Spacing = 1 },                      // spacing on random
		func(s *ScenarioSpec) { s.Channel.Period = 7 },                        // period on gaussian
		func(s *ScenarioSpec) { s.Channel.PGB = 0.5 },                         // GE prob on gaussian
		func(s *ScenarioSpec) { s.Policy.Gamma = 0.9 },                        // gamma on zhou-li
		func(s *ScenarioSpec) { s.Policy.Epsilon = 0.2 },                      // epsilon on zhou-li
		func(s *ScenarioSpec) { s.Channel.Primary = PrimarySpec{PIdle: 0.5} }, // primary params without enabled
		func(s *ScenarioSpec) { s.Persist = PersistSpec{SnapshotEvery: 64} },  // persist params without enabled
		func(s *ScenarioSpec) { s.Persist = PersistSpec{KeepLog: true} },      // keep_log without enabled
		func(s *ScenarioSpec) { s.Decision.Transport = TransportTCP },         // transport on decider execution
		func(s *ScenarioSpec) { s.Decision.Faults = FaultsSpec{Loss: 0.1} },   // faults on decider execution
		func(s *ScenarioSpec) { // loss out of range
			s.Decision.Execution = ExecutionDistnet
			s.Decision.Faults = FaultsSpec{Loss: 1}
		},
		func(s *ScenarioSpec) { // bursts that never end
			s.Decision.Execution = ExecutionDistnet
			s.Decision.Faults = FaultsSpec{BurstEnter: 0.2}
		},
		func(s *ScenarioSpec) {
			s.Topology = TopologySpec{Kind: TopologyGrid, Rows: 2, Cols: 2, RequireConnected: true}
		},
		func(s *ScenarioSpec) {
			s.Topology = TopologySpec{Kind: TopologyGrid, Rows: 2, Cols: 2, N: 5}
		},
	}
	for i, mod := range cases {
		s := ScenarioSpec{Topology: TopologySpec{N: 5}, Channel: ChannelSpec{M: 2}}
		mod(&s)
		err := s.Fill()
		var fe *FieldError
		if !errors.As(err, &fe) {
			t.Fatalf("case %d: err = %v, want FieldError", i, err)
		}
	}
}

func TestParseRejectsUnknownFields(t *testing.T) {
	_, err := Parse([]byte(`{"v":1,"seed":1,"topology":{"n":5},"channel":{"m":2},"frobnicate":true}`))
	var fe *FieldError
	if !errors.As(err, &fe) || fe.Field != "frobnicate" {
		t.Fatalf("err = %v, want FieldError on frobnicate", err)
	}
	// Nested unknown fields too.
	_, err = Parse([]byte(`{"v":1,"seed":1,"topology":{"n":5,"shape":"round"},"channel":{"m":2}}`))
	if !errors.As(err, &fe) || fe.Field != "shape" {
		t.Fatalf("err = %v, want FieldError on shape", err)
	}
}

// TestArtifactKeySharedAcrossKinds: the artifact projection ignores channel
// dynamics, policy, decision parameters and noise seed, so those variations
// share cached artifacts.
func TestArtifactKeySharedAcrossKinds(t *testing.T) {
	base := ScenarioSpec{Seed: 1, Topology: TopologySpec{N: 8}, Channel: ChannelSpec{M: 2}}
	a, err := base.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	varied := base
	varied.NoiseSeed = 99
	varied.Channel.Kind = ChannelGilbertElliott
	varied.Policy = PolicySpec{Kind: PolicyEpsGreedy}
	varied.Decision = DecisionSpec{
		UpdateEvery: 16,
		Execution:   ExecutionDistnet,
		Faults:      FaultsSpec{Loss: 0.2},
	}
	b, err := varied.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if a.ArtifactKey() != b.ArtifactKey() {
		t.Fatalf("artifact keys differ:\n %+v\n %+v", a.ArtifactKey(), b.ArtifactKey())
	}
	moved := base
	moved.Seed = 2
	c, err := moved.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if a.ArtifactKey() == c.ArtifactKey() {
		t.Fatal("different seeds must not share an artifact key")
	}
}
