// Package timing implements the paper's time model (§IV-E, Table II): a
// round t_a consists of a strategy-decision part t_s and a data-transmission
// part t_d; the decision part is made of mini-rounds of length
// t_m = 2·t_b + t_l (two local broadcasts plus the local computation). Only
// the θ = t_d/t_a fraction of a round carries data, which is why the paper's
// "practical" regret stays bounded away from zero.
//
// With the periodic-update schedule of §V-C (one strategy decision per
// period of y time slots), only the first slot of a period pays the decision
// overhead: the effective throughput of period z is
//
//	R_P(z) = ( R_x(zy+1)·t_d + Σ_{t=zy+2..(z+1)y} R_x(t)·t_a ) / (y·t_a).
package timing

import (
	"fmt"
	"time"
)

// Paper's Table II values.
const (
	// PaperRound is t_a, the length of one round.
	PaperRound = 2000 * time.Millisecond
	// PaperLocalBroadcast is t_b, the time of one local broadcast.
	PaperLocalBroadcast = 100 * time.Millisecond
	// PaperLocalCompute is t_l, the total local computation time of a
	// mini-round (LocalLeader selection + local MWIS).
	PaperLocalCompute = 50 * time.Millisecond
	// PaperDataTransmission is t_d, the data-transmission part of a round.
	PaperDataTransmission = 1000 * time.Millisecond
	// PaperDecisionMiniRounds is the paper's setting t_s = 4·t_m.
	PaperDecisionMiniRounds = 4
)

// Params is a concrete time model for the scheme.
type Params struct {
	// Round is t_a.
	Round time.Duration
	// LocalBroadcast is t_b.
	LocalBroadcast time.Duration
	// LocalCompute is t_l.
	LocalCompute time.Duration
	// DataTransmission is t_d.
	DataTransmission time.Duration
	// DecisionMiniRounds is the number of mini-rounds budgeted into the
	// strategy-decision part (the paper's t_s = c·t_m with c=4: one for
	// weight update, the rest for decision).
	DecisionMiniRounds int
}

// Paper returns the Table II parameter set.
func Paper() Params {
	return Params{
		Round:              PaperRound,
		LocalBroadcast:     PaperLocalBroadcast,
		LocalCompute:       PaperLocalCompute,
		DataTransmission:   PaperDataTransmission,
		DecisionMiniRounds: PaperDecisionMiniRounds,
	}
}

// Validate checks internal consistency: t_s + t_d must fit in t_a.
func (p Params) Validate() error {
	if p.Round <= 0 || p.LocalBroadcast < 0 || p.LocalCompute < 0 || p.DataTransmission <= 0 {
		return fmt.Errorf("timing: non-positive durations in %+v", p)
	}
	if p.DecisionMiniRounds <= 0 {
		return fmt.Errorf("timing: DecisionMiniRounds must be positive, got %d", p.DecisionMiniRounds)
	}
	if p.Decision()+p.DataTransmission > p.Round {
		return fmt.Errorf("timing: t_s+t_d = %v exceeds round t_a = %v",
			p.Decision()+p.DataTransmission, p.Round)
	}
	return nil
}

// MiniRound returns t_m = 2·t_b + t_l.
func (p Params) MiniRound() time.Duration {
	return 2*p.LocalBroadcast + p.LocalCompute
}

// Decision returns t_s = DecisionMiniRounds · t_m.
func (p Params) Decision() time.Duration {
	return time.Duration(p.DecisionMiniRounds) * p.MiniRound()
}

// Theta returns θ = t_d / t_a, the fraction of a round that carries data
// when the strategy is re-decided every slot.
func (p Params) Theta() float64 {
	return float64(p.DataTransmission) / float64(p.Round)
}

// PeriodLength returns t_P = y · t_a for an update period of y slots.
func (p Params) PeriodLength(y int) time.Duration {
	return time.Duration(y) * p.Round
}

// EffectiveFraction returns the fraction of a y-slot period that carries
// data: the first slot contributes t_d, the remaining y−1 slots a full t_a,
// i.e. ((y−1)·t_a + t_d) / (y·t_a). For y=1 this is θ; it approaches 1 as
// y grows (the paper's ½, 9/10, 19/20, 39/40 sequence for y=1,5,10,20).
func (p Params) EffectiveFraction(y int) float64 {
	if y < 1 {
		return 0
	}
	num := float64(y-1)*float64(p.Round) + float64(p.DataTransmission)
	return num / (float64(y) * float64(p.Round))
}

// PeriodThroughput computes R_P(z): the effective average throughput of one
// period given the per-slot observed throughputs slots[0..y-1] (slots[0] is
// the decision slot).
func (p Params) PeriodThroughput(slots []float64) (float64, error) {
	y := len(slots)
	if y == 0 {
		return 0, fmt.Errorf("timing: empty period")
	}
	total := slots[0] * float64(p.DataTransmission)
	for _, r := range slots[1:] {
		total += r * float64(p.Round)
	}
	return total / (float64(y) * float64(p.Round)), nil
}

// PeriodEstimate computes W_P(z): the effective average *estimated*
// throughput of a period whose decision had estimated strategy weight w,
// i.e. ((y−1)·t_a + t_d)·w / (y·t_a).
func (p Params) PeriodEstimate(w float64, y int) float64 {
	return p.EffectiveFraction(y) * w
}
