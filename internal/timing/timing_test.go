package timing

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestPaperTableII(t *testing.T) {
	// Table II: t_a=2000ms, t_b=100ms, t_l=50ms, t_d=1000ms.
	p := Paper()
	if p.Round != 2000*time.Millisecond {
		t.Fatalf("t_a = %v", p.Round)
	}
	if p.LocalBroadcast != 100*time.Millisecond {
		t.Fatalf("t_b = %v", p.LocalBroadcast)
	}
	if p.LocalCompute != 50*time.Millisecond {
		t.Fatalf("t_l = %v", p.LocalCompute)
	}
	if p.DataTransmission != 1000*time.Millisecond {
		t.Fatalf("t_d = %v", p.DataTransmission)
	}
}

func TestPaperDerivedQuantities(t *testing.T) {
	p := Paper()
	// t_m = 2·t_b + t_l = 250ms (§V).
	if p.MiniRound() != 250*time.Millisecond {
		t.Fatalf("t_m = %v, want 250ms", p.MiniRound())
	}
	// t_s = 4·t_m = 1000ms.
	if p.Decision() != 1000*time.Millisecond {
		t.Fatalf("t_s = %v, want 1000ms", p.Decision())
	}
	// θ = t_d/t_a = 0.5: "the actual throughput gained at each round is
	// 0.5·R_x(t) in our setting".
	if p.Theta() != 0.5 {
		t.Fatalf("theta = %v, want 0.5", p.Theta())
	}
}

func TestPaperValidates(t *testing.T) {
	if err := Paper().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejects(t *testing.T) {
	bad := Paper()
	bad.Round = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("expected error for zero round")
	}
	bad = Paper()
	bad.DecisionMiniRounds = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("expected error for zero mini-rounds")
	}
	bad = Paper()
	bad.DecisionMiniRounds = 100 // t_s = 25s > t_a
	if err := bad.Validate(); err == nil {
		t.Fatal("expected error for decision exceeding round")
	}
}

func TestEffectiveFractionPaperSequence(t *testing.T) {
	// §V-C: "around 1/2, 9/10, 19/20, 39/40 of the ideal throughput" for
	// y = 1, 5, 10, 20.
	p := Paper()
	tests := []struct {
		y    int
		want float64
	}{
		{1, 0.5},
		{5, 0.9},
		{10, 0.95},
		{20, 0.975},
	}
	for _, tt := range tests {
		if got := p.EffectiveFraction(tt.y); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("EffectiveFraction(%d) = %v, want %v", tt.y, got, tt.want)
		}
	}
}

func TestEffectiveFractionBounds(t *testing.T) {
	p := Paper()
	if p.EffectiveFraction(0) != 0 {
		t.Fatal("y=0 must yield 0")
	}
	f := func(y uint8) bool {
		yy := int(y%200) + 1
		frac := p.EffectiveFraction(yy)
		return frac >= p.Theta()-1e-12 && frac < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEffectiveFractionMonotone(t *testing.T) {
	p := Paper()
	prev := 0.0
	for y := 1; y <= 100; y++ {
		frac := p.EffectiveFraction(y)
		if frac <= prev {
			t.Fatalf("EffectiveFraction not strictly increasing at y=%d", y)
		}
		prev = frac
	}
}

func TestPeriodLength(t *testing.T) {
	p := Paper()
	if got := p.PeriodLength(5); got != 10*time.Second {
		t.Fatalf("PeriodLength(5) = %v", got)
	}
}

func TestPeriodThroughputY1(t *testing.T) {
	// y=1: R_P = θ·R_x.
	p := Paper()
	got, err := p.PeriodThroughput([]float64{100})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-50) > 1e-9 {
		t.Fatalf("PeriodThroughput([100]) = %v, want 50", got)
	}
}

func TestPeriodThroughputFormula(t *testing.T) {
	// y=4, slots 10,20,30,40:
	// (10·t_d + (20+30+40)·t_a) / (4·t_a) = (10·0.5 + 90) / 4 = 23.75.
	p := Paper()
	got, err := p.PeriodThroughput([]float64{10, 20, 30, 40})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-23.75) > 1e-9 {
		t.Fatalf("PeriodThroughput = %v, want 23.75", got)
	}
}

func TestPeriodThroughputEmpty(t *testing.T) {
	if _, err := Paper().PeriodThroughput(nil); err == nil {
		t.Fatal("expected error for empty period")
	}
}

func TestPeriodEstimate(t *testing.T) {
	p := Paper()
	// y=1: W_P = θ·w.
	if got := p.PeriodEstimate(100, 1); math.Abs(got-50) > 1e-9 {
		t.Fatalf("PeriodEstimate(100,1) = %v", got)
	}
	// y=5: W_P = 0.9·w.
	if got := p.PeriodEstimate(100, 5); math.Abs(got-90) > 1e-9 {
		t.Fatalf("PeriodEstimate(100,5) = %v", got)
	}
}

func TestPeriodThroughputConstantSlots(t *testing.T) {
	// With identical per-slot throughput R, R_P = EffectiveFraction(y)·R.
	p := Paper()
	f := func(y uint8, raw float64) bool {
		yy := int(y%30) + 1
		r := math.Abs(math.Mod(raw, 1000))
		if math.IsNaN(r) {
			return true
		}
		slots := make([]float64, yy)
		for i := range slots {
			slots[i] = r
		}
		got, err := p.PeriodThroughput(slots)
		if err != nil {
			return false
		}
		want := p.EffectiveFraction(yy) * r
		return math.Abs(got-want) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
