// Package topology generates the wireless-network layouts the paper
// simulates: random unit-disk networks with uniformly placed nodes, the
// linear worst-case network of §IV-D, grids, and stars.
//
// A Network couples node positions with the induced unit-disk conflict graph
// G: nodes u and v conflict when their Euclidean distance is at most the
// interference radius (2 units in the paper's normalization, where each node
// is a unit disk centered on itself).
package topology

import (
	"fmt"
	"math"

	"multihopbandit/internal/geom"
	"multihopbandit/internal/graph"
	"multihopbandit/internal/rng"
)

// DefaultRadius is the conflict radius of the paper's unit-disk model: two
// unit disks intersect when their centers are within distance 2.
const DefaultRadius = 2.0

// Network is a set of node positions plus the induced conflict graph.
type Network struct {
	// Positions holds the location of each node; node ids are indices.
	Positions []geom.Point
	// Radius is the conflict radius used to build G.
	Radius float64
	// G is the unit-disk conflict graph over the nodes.
	G *graph.Graph
}

// N returns the number of nodes.
func (nw *Network) N() int { return len(nw.Positions) }

// BuildConflictGraph constructs the unit-disk graph for the given positions
// and radius.
func BuildConflictGraph(positions []geom.Point, radius float64) *graph.Graph {
	g := graph.New(len(positions))
	r2 := radius * radius
	for i := 0; i < len(positions); i++ {
		for j := i + 1; j < len(positions); j++ {
			if geom.Dist2(positions[i], positions[j]) <= r2 {
				// Endpoints are always in range by construction.
				_ = g.AddEdge(i, j)
			}
		}
	}
	return g
}

// FromPositions builds a Network from explicit positions.
func FromPositions(positions []geom.Point, radius float64) *Network {
	pos := append([]geom.Point(nil), positions...)
	return &Network{
		Positions: pos,
		Radius:    radius,
		G:         BuildConflictGraph(pos, radius),
	}
}

// RandomConfig parameterizes Random.
type RandomConfig struct {
	// N is the number of nodes; must be positive.
	N int
	// Side is the side length of the deployment square. If zero, a side is
	// chosen so that the expected average degree is TargetDegree.
	Side float64
	// Radius is the conflict radius; DefaultRadius if zero.
	Radius float64
	// TargetDegree is the desired average degree used to size the square
	// when Side is zero. If zero, 6 is used (a sparse multi-hop network).
	TargetDegree float64
	// RequireConnected retries placement until G is connected.
	RequireConnected bool
	// MaxAttempts bounds connectivity retries (default 1000).
	MaxAttempts int
}

func (c *RandomConfig) fill() error {
	if c.N <= 0 {
		return fmt.Errorf("topology: N must be positive, got %d", c.N)
	}
	if c.Radius == 0 {
		c.Radius = DefaultRadius
	}
	if c.Radius < 0 {
		return fmt.Errorf("topology: radius must be non-negative, got %v", c.Radius)
	}
	if c.TargetDegree == 0 {
		c.TargetDegree = 6
	}
	if c.Side == 0 {
		c.Side = sideForDegree(c.N, c.Radius, c.TargetDegree)
	}
	if c.MaxAttempts == 0 {
		c.MaxAttempts = 1000
	}
	return nil
}

// sideForDegree sizes the square so that the expected number of neighbors of
// a node, N·π·radius²/side², matches the target degree.
func sideForDegree(n int, radius, degree float64) float64 {
	if degree <= 0 {
		degree = 6
	}
	area := float64(n) * math.Pi * radius * radius / degree
	return math.Sqrt(area)
}

// Random places cfg.N nodes uniformly at random in the deployment square and
// returns the resulting network. With RequireConnected it resamples until the
// conflict graph is connected or MaxAttempts is exhausted.
func Random(cfg RandomConfig, src *rng.Source) (*Network, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	for attempt := 0; attempt < cfg.MaxAttempts; attempt++ {
		positions := make([]geom.Point, cfg.N)
		for i := range positions {
			positions[i] = geom.Point{
				X: src.UniformRange(0, cfg.Side),
				Y: src.UniformRange(0, cfg.Side),
			}
		}
		nw := FromPositions(positions, cfg.Radius)
		if !cfg.RequireConnected || nw.G.Connected() {
			return nw, nil
		}
	}
	return nil, fmt.Errorf("topology: no connected placement of %d nodes in %d attempts",
		cfg.N, cfg.MaxAttempts)
}

// Linear returns the worst-case network of the paper's §IV-D: n nodes evenly
// spaced along a line with consecutive nodes at the given spacing. With
// spacing < radius each node conflicts only with its neighbors, so a strictly
// decreasing weight profile forces Θ(n) mini-rounds in Algorithm 3.
func Linear(n int, spacing, radius float64) (*Network, error) {
	if n <= 0 {
		return nil, fmt.Errorf("topology: N must be positive, got %d", n)
	}
	if spacing <= 0 || radius <= 0 {
		return nil, fmt.Errorf("topology: spacing and radius must be positive")
	}
	positions := make([]geom.Point, n)
	for i := range positions {
		positions[i] = geom.Point{X: float64(i) * spacing}
	}
	return FromPositions(positions, radius), nil
}

// Grid returns a rows×cols grid with the given spacing between adjacent grid
// points.
func Grid(rows, cols int, spacing, radius float64) (*Network, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("topology: grid dimensions must be positive, got %dx%d", rows, cols)
	}
	if spacing <= 0 || radius <= 0 {
		return nil, fmt.Errorf("topology: spacing and radius must be positive")
	}
	positions := make([]geom.Point, 0, rows*cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			positions = append(positions, geom.Point{
				X: float64(c) * spacing,
				Y: float64(r) * spacing,
			})
		}
	}
	return FromPositions(positions, radius), nil
}

// Star returns a network with one hub that conflicts with n-1 leaves, and no
// leaf-leaf conflicts. It is the extreme single-hop-like case: all leaves
// compete with the hub only.
func Star(n int, radius float64) (*Network, error) {
	if n <= 0 {
		return nil, fmt.Errorf("topology: N must be positive, got %d", n)
	}
	if radius <= 0 {
		return nil, fmt.Errorf("topology: radius must be positive")
	}
	positions := make([]geom.Point, n)
	// Leaves sit just inside the hub's radius but pairwise out of range of
	// each other on a circle of radius slightly below the conflict radius.
	const eps = 1e-9
	r := radius - eps
	for i := 1; i < n; i++ {
		angle := 2 * math.Pi * float64(i-1) / float64(n-1)
		positions[i] = geom.Point{X: r * math.Cos(angle), Y: r * math.Sin(angle)}
	}
	nw := FromPositions(positions, radius)
	// For very large n leaves may come within radius of each other; the
	// caller gets whatever the geometry induces, which is still a valid
	// unit-disk network.
	return nw, nil
}
