package topology

import (
	"math"
	"testing"
	"testing/quick"

	"multihopbandit/internal/geom"
	"multihopbandit/internal/rng"
)

func TestBuildConflictGraphPair(t *testing.T) {
	pos := []geom.Point{{X: 0}, {X: 1.5}, {X: 10}}
	g := BuildConflictGraph(pos, 2)
	if !g.HasEdge(0, 1) {
		t.Fatal("nodes within radius must conflict")
	}
	if g.HasEdge(0, 2) || g.HasEdge(1, 2) {
		t.Fatal("distant nodes must not conflict")
	}
}

func TestBuildConflictGraphBoundaryInclusive(t *testing.T) {
	pos := []geom.Point{{X: 0}, {X: 2}}
	g := BuildConflictGraph(pos, 2)
	if !g.HasEdge(0, 1) {
		t.Fatal("distance exactly equal to radius must conflict")
	}
}

func TestFromPositionsCopies(t *testing.T) {
	pos := []geom.Point{{X: 0}, {X: 1}}
	nw := FromPositions(pos, 2)
	pos[0].X = 100
	if nw.Positions[0].X == 100 {
		t.Fatal("FromPositions must copy the position slice")
	}
}

func TestRandomBasics(t *testing.T) {
	nw, err := Random(RandomConfig{N: 60}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if nw.N() != 60 {
		t.Fatalf("N = %d", nw.N())
	}
	if nw.Radius != DefaultRadius {
		t.Fatalf("Radius = %v", nw.Radius)
	}
	if nw.G.N() != 60 {
		t.Fatalf("graph has %d vertices", nw.G.N())
	}
}

func TestRandomDeterministic(t *testing.T) {
	a, err := Random(RandomConfig{N: 30}, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Random(RandomConfig{N: 30}, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Positions {
		if a.Positions[i] != b.Positions[i] {
			t.Fatalf("position %d differs between identical seeds", i)
		}
	}
}

func TestRandomTargetDegree(t *testing.T) {
	// Average over several seeds should land near the target.
	const target = 6.0
	total := 0.0
	const runs = 20
	for s := int64(0); s < runs; s++ {
		nw, err := Random(RandomConfig{N: 200, TargetDegree: target}, rng.New(s))
		if err != nil {
			t.Fatal(err)
		}
		total += nw.G.AverageDegree()
	}
	avg := total / runs
	// Boundary effects lower the realized degree; allow a generous band.
	if avg < target*0.5 || avg > target*1.5 {
		t.Fatalf("realized average degree %v too far from target %v", avg, target)
	}
}

func TestRandomRequireConnected(t *testing.T) {
	nw, err := Random(RandomConfig{
		N:                25,
		TargetDegree:     8,
		RequireConnected: true,
	}, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if !nw.G.Connected() {
		t.Fatal("RequireConnected returned a disconnected network")
	}
}

func TestRandomConnectivityFailure(t *testing.T) {
	// A huge sparse square makes connectivity essentially impossible.
	_, err := Random(RandomConfig{
		N:                10,
		Side:             1e6,
		RequireConnected: true,
		MaxAttempts:      3,
	}, rng.New(1))
	if err == nil {
		t.Fatal("expected connectivity failure on an extremely sparse deployment")
	}
}

func TestRandomInvalidConfig(t *testing.T) {
	if _, err := Random(RandomConfig{N: 0}, rng.New(1)); err == nil {
		t.Fatal("expected error for N=0")
	}
	if _, err := Random(RandomConfig{N: 5, Radius: -1}, rng.New(1)); err == nil {
		t.Fatal("expected error for negative radius")
	}
}

func TestRandomPositionsInsideSquare(t *testing.T) {
	f := func(seed int64) bool {
		nw, err := Random(RandomConfig{N: 40, Side: 12}, rng.New(seed))
		if err != nil {
			return false
		}
		for _, p := range nw.Positions {
			if p.X < 0 || p.X >= 12 || p.Y < 0 || p.Y >= 12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestConflictGraphIsUnitDiskProperty(t *testing.T) {
	f := func(seed int64) bool {
		nw, err := Random(RandomConfig{N: 30}, rng.New(seed))
		if err != nil {
			return false
		}
		for i := 0; i < nw.N(); i++ {
			for j := i + 1; j < nw.N(); j++ {
				within := geom.Dist(nw.Positions[i], nw.Positions[j]) <= nw.Radius
				if nw.G.HasEdge(i, j) != within {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestLinear(t *testing.T) {
	nw, err := Linear(10, 1, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	// Spacing 1, radius 1.5: consecutive nodes conflict, distance-2 do not.
	if !nw.G.HasEdge(0, 1) || !nw.G.HasEdge(4, 5) {
		t.Fatal("consecutive nodes must conflict")
	}
	if nw.G.HasEdge(0, 2) {
		t.Fatal("distance-2 nodes must not conflict at radius 1.5")
	}
	if !nw.G.Connected() {
		t.Fatal("linear network must be connected")
	}
}

func TestLinearDegreeStructure(t *testing.T) {
	nw, err := Linear(50, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if nw.G.MaxDegree() != 2 {
		t.Fatalf("linear max degree = %d, want 2", nw.G.MaxDegree())
	}
	if nw.G.Degree(0) != 1 || nw.G.Degree(49) != 1 {
		t.Fatal("endpoints must have degree 1")
	}
}

func TestLinearInvalid(t *testing.T) {
	if _, err := Linear(0, 1, 1); err == nil {
		t.Fatal("expected error for N=0")
	}
	if _, err := Linear(5, 0, 1); err == nil {
		t.Fatal("expected error for zero spacing")
	}
	if _, err := Linear(5, 1, -2); err == nil {
		t.Fatal("expected error for negative radius")
	}
}

func TestGrid(t *testing.T) {
	nw, err := Grid(3, 4, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if nw.N() != 12 {
		t.Fatalf("grid has %d nodes, want 12", nw.N())
	}
	// Orthogonal neighbors conflict at radius=spacing; diagonals do not.
	if !nw.G.HasEdge(0, 1) {
		t.Fatal("horizontal neighbors must conflict")
	}
	if !nw.G.HasEdge(0, 4) {
		t.Fatal("vertical neighbors must conflict")
	}
	if nw.G.HasEdge(0, 5) {
		t.Fatal("diagonal neighbors must not conflict at radius=spacing")
	}
}

func TestGridInvalid(t *testing.T) {
	if _, err := Grid(0, 3, 1, 1); err == nil {
		t.Fatal("expected error for zero rows")
	}
	if _, err := Grid(2, 2, -1, 1); err == nil {
		t.Fatal("expected error for negative spacing")
	}
}

func TestStar(t *testing.T) {
	nw, err := Star(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Hub conflicts with all leaves.
	for leaf := 1; leaf < 8; leaf++ {
		if !nw.G.HasEdge(0, leaf) {
			t.Fatalf("hub does not conflict with leaf %d", leaf)
		}
	}
	if nw.G.Degree(0) != 7 {
		t.Fatalf("hub degree = %d, want 7", nw.G.Degree(0))
	}
}

func TestStarLeafSeparation(t *testing.T) {
	// With few leaves they sit far apart on the circle and must not
	// conflict with each other.
	nw, err := Star(5, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			if nw.G.HasEdge(i, j) {
				t.Fatalf("leaves %d and %d conflict", i, j)
			}
		}
	}
}

func TestStarInvalid(t *testing.T) {
	if _, err := Star(0, 1); err == nil {
		t.Fatal("expected error for N=0")
	}
	if _, err := Star(3, 0); err == nil {
		t.Fatal("expected error for zero radius")
	}
}

func TestSideForDegreeFormula(t *testing.T) {
	// side² = N·π·r²/degree.
	side := sideForDegree(100, 2, 6)
	want := math.Sqrt(100 * math.Pi * 4 / 6)
	if math.Abs(side-want) > 1e-9 {
		t.Fatalf("sideForDegree = %v, want %v", side, want)
	}
}
