// Package wal is the durability substrate of the serving runtime: a
// per-instance write-ahead observation log plus atomic snapshot files,
// together forming the on-disk state a banditd restart recovers learners
// from (snapshot + log-tail replay, bit-identical to the uninterrupted
// trajectory — see internal/serve and OPERATIONS.md).
//
// A log is a sequence of segment files. Each segment starts with a fixed
// header (magic, format version, the slot index of the first record the
// segment may hold) followed by CRC-framed binary records. One record is
// one applied time slot of Algorithm 2: the played virtual-vertex ids and
// the realized rewards, exactly the observation batch core.Loop.StepExternal
// consumes — so replaying a log through the slot kernel reconstructs the
// learner state bit-identically (rewards travel as raw IEEE-754 bits, never
// through a decimal round trip).
//
// Crash semantics follow the usual WAL contract:
//
//   - a torn tail — a record frame the crash cut short, including a frame
//     whose checksum fails at the very end of the file — is truncated on
//     open (Repair), and recovery resumes from the last durable record;
//   - a checksum mismatch anywhere before the tail means the file was
//     corrupted after the fact and is rejected with ErrCorrupt: recovery
//     must fail loudly rather than silently replay damaged history.
//
// Appends are unbuffered in user space (one write(2) per record), so a
// killed process loses at most the records the kernel had not yet accepted;
// the fsync policy (SyncAlways, SyncBatch, SyncNone) controls what a whole
// machine crash can lose. The record framing and the segment header are
// part of the repository's bit-identity contract (CONTRIBUTING.md): format
// changes bump the header version, never silently reinterpret bytes.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Magic opens every segment file; Version is the format version it carries.
// Bump Version on any framing change.
const (
	Magic   = "MHBWAL\n"
	Version = 1
)

// headerSize is the fixed segment header: magic (7) + version (1) +
// start slot (8, little-endian uint64).
const headerSize = len(Magic) + 1 + 8

// frameOverhead is the per-record framing: payload length (4) + CRC-32C of
// the payload (4), both little-endian.
const frameOverhead = 8

// maxRecordSize bounds a single record's payload; reads reject larger
// length fields as corruption rather than allocating unbounded buffers.
const maxRecordSize = 1 << 24

// ErrCorrupt reports a segment whose body fails its checksums before the
// tail — damaged history that must not be replayed.
var ErrCorrupt = errors.New("wal: corrupt segment")

// castagnoli is the CRC-32C table used for record checksums.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// SyncPolicy says when appended records are fsynced to stable storage.
type SyncPolicy string

const (
	// SyncAlways fsyncs after every appended record: a machine crash loses
	// at most the record being written. Slowest (one fsync per slot).
	SyncAlways SyncPolicy = "always"
	// SyncBatch leaves fsync to the caller's Sync calls — the serving
	// runtime syncs once per applied request batch. The default.
	SyncBatch SyncPolicy = "batch"
	// SyncNone never fsyncs; the OS flushes on its own schedule. A process
	// kill still loses nothing (writes are unbuffered in user space); only
	// a machine crash can lose recent records.
	SyncNone SyncPolicy = "none"
)

// ValidSyncPolicy reports whether p names a known policy.
func ValidSyncPolicy(p SyncPolicy) bool {
	switch p {
	case SyncAlways, SyncBatch, SyncNone:
		return true
	}
	return false
}

// Record is one applied time slot: the played virtual-vertex ids and their
// realized rewards (normalized units), exactly one observation batch of the
// slot kernel.
type Record struct {
	// Slot is the 0-based index of the slot the observation belongs to;
	// applying it advances the loop from Slot to Slot+1.
	Slot int
	// Played are the virtual-vertex ids observed this slot.
	Played []int
	// Rewards are the realized rewards of Played, index-aligned.
	Rewards []float64
}

// recObservation is the only record type of format version 1.
const recObservation = 1

// appendPayload encodes r into buf (reused across appends).
func appendPayload(buf []byte, r Record) []byte {
	buf = append(buf, recObservation)
	buf = binary.AppendUvarint(buf, uint64(r.Slot))
	buf = binary.AppendUvarint(buf, uint64(len(r.Played)))
	for _, v := range r.Played {
		buf = binary.AppendUvarint(buf, uint64(v))
	}
	for _, x := range r.Rewards {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(x))
	}
	return buf
}

// decodePayload is the inverse of appendPayload.
func decodePayload(p []byte) (Record, error) {
	if len(p) == 0 || p[0] != recObservation {
		return Record{}, fmt.Errorf("%w: unknown record type", ErrCorrupt)
	}
	p = p[1:]
	slot, n := binary.Uvarint(p)
	if n <= 0 {
		return Record{}, fmt.Errorf("%w: truncated slot", ErrCorrupt)
	}
	p = p[n:]
	count, n := binary.Uvarint(p)
	if n <= 0 {
		return Record{}, fmt.Errorf("%w: truncated count", ErrCorrupt)
	}
	p = p[n:]
	r := Record{Slot: int(slot), Played: make([]int, count), Rewards: make([]float64, count)}
	for i := range r.Played {
		v, n := binary.Uvarint(p)
		if n <= 0 {
			return Record{}, fmt.Errorf("%w: truncated played ids", ErrCorrupt)
		}
		r.Played[i] = int(v)
		p = p[n:]
	}
	if len(p) != 8*int(count) {
		return Record{}, fmt.Errorf("%w: reward block is %d bytes, want %d", ErrCorrupt, len(p), 8*count)
	}
	for i := range r.Rewards {
		r.Rewards[i] = math.Float64frombits(binary.LittleEndian.Uint64(p[8*i:]))
	}
	return r, nil
}

// Log is an append handle on one open segment. It is not safe for
// concurrent use; the serving runtime confines each log to its instance's
// actor goroutine.
type Log struct {
	f      *os.File
	path   string
	policy SyncPolicy
	buf    []byte // reused frame buffer
	dirty  bool   // appended since the last Sync
}

// Create starts a new segment at path holding records from startSlot on,
// replacing any existing file. The header is written and synced before
// Create returns, so a crash right after leaves a valid empty segment.
func Create(path string, startSlot int, policy SyncPolicy) (*Log, error) {
	if !ValidSyncPolicy(policy) {
		return nil, fmt.Errorf("wal: unknown sync policy %q", policy)
	}
	if startSlot < 0 {
		return nil, fmt.Errorf("wal: start slot must be non-negative, got %d", startSlot)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: create segment: %w", err)
	}
	hdr := make([]byte, 0, headerSize)
	hdr = append(hdr, Magic...)
	hdr = append(hdr, Version)
	hdr = binary.LittleEndian.AppendUint64(hdr, uint64(startSlot))
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: write segment header: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: sync segment header: %w", err)
	}
	return &Log{f: f, path: path, policy: policy}, nil
}

// OpenAppend reopens an existing segment for appending after repairing a
// torn tail. It returns the repaired segment's records (for replay) and the
// log positioned at the end. A checksum failure before the tail returns
// ErrCorrupt.
func OpenAppend(path string, policy SyncPolicy) (*Log, []Record, int, error) {
	if !ValidSyncPolicy(policy) {
		return nil, nil, 0, fmt.Errorf("wal: unknown sync policy %q", policy)
	}
	recs, startSlot, validLen, err := scanSegment(path)
	if err != nil {
		return nil, nil, 0, err
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("wal: open segment: %w", err)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, nil, 0, fmt.Errorf("wal: stat segment: %w", err)
	}
	if fi.Size() > validLen {
		// Torn tail: drop the partial frame so the next append starts on a
		// clean record boundary.
		if err := f.Truncate(validLen); err != nil {
			f.Close()
			return nil, nil, 0, fmt.Errorf("wal: truncate torn tail: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, 0, fmt.Errorf("wal: sync truncated segment: %w", err)
		}
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, nil, 0, fmt.Errorf("wal: seek segment end: %w", err)
	}
	return &Log{f: f, path: path, policy: policy}, recs, startSlot, nil
}

// Append writes one record. Under SyncAlways the record is fsynced before
// Append returns; otherwise durability is governed by Sync / the OS.
func (l *Log) Append(r Record) error {
	l.buf = l.buf[:0]
	// Reserve the frame, then fill it around the encoded payload.
	l.buf = append(l.buf, 0, 0, 0, 0, 0, 0, 0, 0)
	l.buf = appendPayload(l.buf, r)
	payload := l.buf[frameOverhead:]
	binary.LittleEndian.PutUint32(l.buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(l.buf[4:8], crc32.Checksum(payload, castagnoli))
	if _, err := l.f.Write(l.buf); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	l.dirty = true
	if l.policy == SyncAlways {
		return l.Sync()
	}
	return nil
}

// AppendedBytes returns the frame size the last Append wrote (for
// accounting; 0 before the first append).
func (l *Log) AppendedBytes() int { return len(l.buf) }

// Sync fsyncs appended records to stable storage. A no-op when nothing was
// appended since the last Sync, or under SyncNone.
func (l *Log) Sync() error {
	if !l.dirty || l.policy == SyncNone {
		return nil
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: sync: %w", err)
	}
	l.dirty = false
	return nil
}

// Dirty reports whether records were appended since the last Sync (callers
// use it to count real fsyncs instead of no-ops).
func (l *Log) Dirty() bool { return l.dirty }

// Path returns the segment file path.
func (l *Log) Path() string { return l.path }

// Close syncs (except under SyncNone) and closes the segment.
func (l *Log) Close() error {
	if err := l.Sync(); err != nil {
		l.f.Close()
		return err
	}
	return l.f.Close()
}

// scanSegment reads a segment, returning its records, its start slot, and
// the byte offset of the last whole valid record (the repair truncation
// point). A frame that is incomplete at EOF, or whose checksum fails at
// EOF, is a torn tail and is excluded; a checksum failure with more data
// after it is ErrCorrupt.
func scanSegment(path string) (recs []Record, startSlot int, validLen int64, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, 0, fmt.Errorf("wal: read segment: %w", err)
	}
	if len(data) < headerSize || string(data[:len(Magic)]) != Magic {
		return nil, 0, 0, fmt.Errorf("%w: %s: bad segment header", ErrCorrupt, path)
	}
	if v := data[len(Magic)]; v != Version {
		return nil, 0, 0, fmt.Errorf("wal: %s: unsupported format version %d (want %d)", path, v, Version)
	}
	startSlot = int(binary.LittleEndian.Uint64(data[len(Magic)+1:]))
	off := int64(headerSize)
	body := data[headerSize:]
	for len(body) > 0 {
		if len(body) < frameOverhead {
			return recs, startSlot, off, nil // torn frame header
		}
		size := binary.LittleEndian.Uint32(body[0:4])
		sum := binary.LittleEndian.Uint32(body[4:8])
		if size > maxRecordSize {
			// A garbage length field: at EOF it is a torn tail, before it
			// corruption (there is no way more valid frames follow).
			if int(size) > len(body)-frameOverhead {
				return recs, startSlot, off, nil
			}
			return nil, 0, 0, fmt.Errorf("%w: %s: record size %d exceeds limit at offset %d", ErrCorrupt, path, size, off)
		}
		if int(size) > len(body)-frameOverhead {
			return recs, startSlot, off, nil // torn payload
		}
		payload := body[frameOverhead : frameOverhead+int(size)]
		atEOF := len(body) == frameOverhead+int(size)
		if crc32.Checksum(payload, castagnoli) != sum {
			if atEOF {
				return recs, startSlot, off, nil // torn checksum at the tail
			}
			return nil, 0, 0, fmt.Errorf("%w: %s: checksum mismatch at offset %d", ErrCorrupt, path, off)
		}
		rec, derr := decodePayload(payload)
		if derr != nil {
			if atEOF {
				return recs, startSlot, off, nil
			}
			return nil, 0, 0, fmt.Errorf("%s: offset %d: %w", path, off, derr)
		}
		recs = append(recs, rec)
		off += int64(frameOverhead) + int64(size)
		body = body[frameOverhead+int(size):]
	}
	return recs, startSlot, off, nil
}

// ReadSegment returns a segment's records and start slot without modifying
// the file: torn tails are excluded (not truncated), pre-tail corruption is
// ErrCorrupt.
func ReadSegment(path string) ([]Record, int, error) {
	recs, start, _, err := scanSegment(path)
	return recs, start, err
}

// segmentPrefix and segmentSuffix frame segment file names:
// wal-<start slot, 16 decimal digits>.log, so lexical order is slot order.
const (
	segmentPrefix = "wal-"
	segmentSuffix = ".log"
)

// SegmentName returns the file name of the segment starting at startSlot.
func SegmentName(startSlot int) string {
	return fmt.Sprintf("%s%016d%s", segmentPrefix, startSlot, segmentSuffix)
}

// ListSegments returns the segment file names in dir in ascending start-slot
// order, with their start slots parsed from the names.
func ListSegments(dir string) (names []string, startSlots []int, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: list segments: %w", err)
	}
	type seg struct {
		name  string
		start int
	}
	var segs []seg
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, segmentPrefix) || !strings.HasSuffix(name, segmentSuffix) {
			continue
		}
		digits := strings.TrimSuffix(strings.TrimPrefix(name, segmentPrefix), segmentSuffix)
		start, perr := strconv.Atoi(digits)
		if perr != nil {
			continue
		}
		segs = append(segs, seg{name: name, start: start})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].start < segs[j].start })
	for _, s := range segs {
		names = append(names, s.name)
		startSlots = append(startSlots, s.start)
	}
	return names, startSlots, nil
}

// WriteFileAtomic durably replaces path with data: write to a temp file in
// the same directory, fsync it, rename over path, fsync the directory. A
// crash leaves either the old contents or the new, never a mix — this is
// how snapshot files are published.
func WriteFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-")
	if err != nil {
		return fmt.Errorf("wal: atomic write: %w", err)
	}
	tmpName := tmp.Name()
	cleanup := func() { tmp.Close(); os.Remove(tmpName) }
	if _, err := tmp.Write(data); err != nil {
		cleanup()
		return fmt.Errorf("wal: atomic write: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return fmt.Errorf("wal: atomic write sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("wal: atomic write close: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("wal: atomic rename: %w", err)
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a rename within it is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: open dir for sync: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("wal: sync dir: %w", err)
	}
	return nil
}
