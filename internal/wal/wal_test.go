package wal

import (
	"encoding/binary"
	"errors"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func testRecords(n int) []Record {
	recs := make([]Record, n)
	for i := range recs {
		k := i%3 + 1
		r := Record{Slot: i, Played: make([]int, k), Rewards: make([]float64, k)}
		for j := 0; j < k; j++ {
			r.Played[j] = (i*7 + j*3) % 40
			r.Rewards[j] = float64((i*13+j*5)%17) / 17
		}
		recs[i] = r
	}
	return recs
}

func writeSegment(t *testing.T, path string, start int, recs []Record) {
	t.Helper()
	l, err := Create(path, start, SyncBatch)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	for _, r := range recs {
		if err := l.Append(r); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), SegmentName(5))
	want := testRecords(20)
	writeSegment(t, path, 5, want)

	got, start, err := ReadSegment(path)
	if err != nil {
		t.Fatalf("ReadSegment: %v", err)
	}
	if start != 5 {
		t.Fatalf("start slot = %d, want 5", start)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("records round-trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestRewardBitsExact(t *testing.T) {
	// Rewards must survive as raw IEEE-754 bits, including values a decimal
	// round trip would perturb.
	path := filepath.Join(t.TempDir(), SegmentName(0))
	vals := []float64{0.1, 1.0 / 3.0, math.Nextafter(0.5, 1), 0, 1}
	rec := Record{Slot: 0, Played: make([]int, len(vals)), Rewards: vals}
	writeSegment(t, path, 0, []Record{rec})

	got, _, err := ReadSegment(path)
	if err != nil {
		t.Fatalf("ReadSegment: %v", err)
	}
	for i, v := range vals {
		if math.Float64bits(got[0].Rewards[i]) != math.Float64bits(v) {
			t.Fatalf("reward %d: bits %x != %x", i, math.Float64bits(got[0].Rewards[i]), math.Float64bits(v))
		}
	}
}

func TestEmptySegment(t *testing.T) {
	path := filepath.Join(t.TempDir(), SegmentName(7))
	writeSegment(t, path, 7, nil)
	recs, start, err := ReadSegment(path)
	if err != nil {
		t.Fatalf("ReadSegment: %v", err)
	}
	if len(recs) != 0 || start != 7 {
		t.Fatalf("got %d records, start %d; want 0, 7", len(recs), start)
	}
}

// TestTornTailTruncated cuts the file mid-frame at every possible byte
// boundary of the last record and checks OpenAppend repairs to exactly the
// records before it, then accepts new appends.
func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, SegmentName(0))
	recs := testRecords(5)
	writeSegment(t, path, 0, recs)
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Find the byte offset where the last record's frame starts.
	off := headerSize
	for i := 0; i < len(recs)-1; i++ {
		size := binary.LittleEndian.Uint32(full[off:])
		off += frameOverhead + int(size)
	}
	lastStart := off

	for cut := lastStart + 1; cut < len(full); cut++ {
		torn := filepath.Join(dir, "torn.log")
		if err := os.WriteFile(torn, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		l, got, start, err := OpenAppend(torn, SyncBatch)
		if err != nil {
			t.Fatalf("cut=%d: OpenAppend: %v", cut, err)
		}
		if start != 0 {
			t.Fatalf("cut=%d: start = %d", cut, start)
		}
		if !reflect.DeepEqual(got, recs[:len(recs)-1]) {
			t.Fatalf("cut=%d: repaired to %d records, want %d", cut, len(got), len(recs)-1)
		}
		// The torn frame must be gone and appending must resume cleanly.
		extra := Record{Slot: 4, Played: []int{1}, Rewards: []float64{0.5}}
		if err := l.Append(extra); err != nil {
			t.Fatalf("cut=%d: Append after repair: %v", cut, err)
		}
		if err := l.Close(); err != nil {
			t.Fatalf("cut=%d: Close: %v", cut, err)
		}
		again, _, err := ReadSegment(torn)
		if err != nil {
			t.Fatalf("cut=%d: re-read: %v", cut, err)
		}
		want := append(append([]Record{}, recs[:len(recs)-1]...), extra)
		if !reflect.DeepEqual(again, want) {
			t.Fatalf("cut=%d: after repair+append got %d records, want %d", cut, len(again), len(want))
		}
	}
}

// TestTornChecksumAtTail flips a payload byte of the FINAL record: that is a
// torn tail (the crash interleaved with the write), not corruption, and is
// truncated.
func TestTornChecksumAtTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, SegmentName(0))
	recs := testRecords(4)
	writeSegment(t, path, 0, recs)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	l, got, _, err := OpenAppend(path, SyncBatch)
	if err != nil {
		t.Fatalf("OpenAppend: %v", err)
	}
	defer l.Close()
	if !reflect.DeepEqual(got, recs[:3]) {
		t.Fatalf("got %d records, want 3", len(got))
	}
}

// TestCorruptMidFileRejected flips a byte in an interior record: more valid
// data follows, so this is corruption and must be rejected, not repaired.
func TestCorruptMidFileRejected(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, SegmentName(0))
	writeSegment(t, path, 0, testRecords(6))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt a payload byte of the second record.
	off := headerSize
	size0 := binary.LittleEndian.Uint32(data[off:])
	off += frameOverhead + int(size0)
	data[off+frameOverhead] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadSegment(path); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("mid-file corruption: err = %v, want ErrCorrupt", err)
	}
	if _, _, _, err := OpenAppend(path, SyncBatch); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("OpenAppend on corrupt segment: err = %v, want ErrCorrupt", err)
	}
}

func TestBadHeaderRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.log")
	if err := os.WriteFile(path, []byte("not a wal file at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadSegment(path); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad header: err = %v, want ErrCorrupt", err)
	}
}

func TestUnsupportedVersionRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), SegmentName(0))
	writeSegment(t, path, 0, nil)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(Magic)] = Version + 1
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadSegment(path); err == nil || errors.Is(err, ErrCorrupt) {
		t.Fatalf("future version: err = %v, want a version error distinct from ErrCorrupt", err)
	}
}

func TestSyncPolicies(t *testing.T) {
	for _, p := range []SyncPolicy{SyncAlways, SyncBatch, SyncNone} {
		path := filepath.Join(t.TempDir(), SegmentName(0))
		l, err := Create(path, 0, p)
		if err != nil {
			t.Fatalf("%s: Create: %v", p, err)
		}
		if err := l.Append(Record{Slot: 0, Played: []int{2}, Rewards: []float64{0.25}}); err != nil {
			t.Fatalf("%s: Append: %v", p, err)
		}
		if err := l.Sync(); err != nil {
			t.Fatalf("%s: Sync: %v", p, err)
		}
		if err := l.Close(); err != nil {
			t.Fatalf("%s: Close: %v", p, err)
		}
	}
	if ValidSyncPolicy("sometimes") {
		t.Fatal("ValidSyncPolicy accepted junk")
	}
	if _, err := Create(filepath.Join(t.TempDir(), "x.log"), 0, "sometimes"); err == nil {
		t.Fatal("Create accepted junk policy")
	}
}

func TestListSegments(t *testing.T) {
	dir := t.TempDir()
	for _, start := range []int{120, 0, 60} {
		writeSegment(t, filepath.Join(dir, SegmentName(start)), start, nil)
	}
	// Distractors that must be ignored.
	os.WriteFile(filepath.Join(dir, "snapshot.json"), []byte("{}"), 0o644)
	os.WriteFile(filepath.Join(dir, "wal-junk.log"), []byte("x"), 0o644)
	os.Mkdir(filepath.Join(dir, "wal-0000000000000001.log"), 0o755)

	names, starts, err := ListSegments(dir)
	if err != nil {
		t.Fatalf("ListSegments: %v", err)
	}
	if !reflect.DeepEqual(starts, []int{0, 60, 120}) {
		t.Fatalf("start slots = %v, want [0 60 120]", starts)
	}
	want := []string{SegmentName(0), SegmentName(60), SegmentName(120)}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("names = %v, want %v", names, want)
	}
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snapshot.json")
	if err := WriteFileAtomic(path, []byte("one")); err != nil {
		t.Fatalf("WriteFileAtomic: %v", err)
	}
	if err := WriteFileAtomic(path, []byte("two")); err != nil {
		t.Fatalf("WriteFileAtomic overwrite: %v", err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "two" {
		t.Fatalf("contents = %q, want %q", got, "two")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("temp files left behind: %v", entries)
	}
}

func TestOpenAppendContinues(t *testing.T) {
	path := filepath.Join(t.TempDir(), SegmentName(0))
	first := testRecords(3)
	writeSegment(t, path, 0, first)
	l, got, _, err := OpenAppend(path, SyncBatch)
	if err != nil {
		t.Fatalf("OpenAppend: %v", err)
	}
	if !reflect.DeepEqual(got, first) {
		t.Fatalf("replayed %d records, want %d", len(got), len(first))
	}
	more := Record{Slot: 3, Played: []int{9, 11}, Rewards: []float64{0.5, 0.75}}
	if err := l.Append(more); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	all, _, err := ReadSegment(path)
	if err != nil {
		t.Fatalf("ReadSegment: %v", err)
	}
	if len(all) != 4 || !reflect.DeepEqual(all[3], more) {
		t.Fatalf("after reopen+append got %+v", all)
	}
}
