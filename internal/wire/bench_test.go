package wire

import (
	"context"
	"net"
	"testing"
	"time"

	"multihopbandit/internal/serve"
)

func benchServer(b *testing.B) (*Client, func()) {
	b.Helper()
	reg := serve.NewRegistry(serve.RegistryConfig{Shards: 1})
	s := NewServer(reg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go func() { _ = s.Serve(ln) }()
	c, err := Dial(ln.Addr().String(), Options{})
	if err != nil {
		b.Fatal(err)
	}
	return c, func() {
		c.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
		reg.Close()
	}
}

// BenchmarkWireStep is the binary peer of serve.BenchmarkHTTPStep: one
// step request (batch of 8 slots) per iteration over real loopback TCP,
// same instance shape. The benchstat delta between the two is the
// transport cost the tentpole removes.
func BenchmarkWireStep(b *testing.B) {
	c, stop := benchServer(b)
	defer stop()
	if _, err := c.Create(serve.InstanceConfig{ID: "bench", Spec: gaussSpec(8, 2, 1)}); err != nil {
		b.Fatal(err)
	}
	var res serve.StepResult
	if err := c.StepInto("bench", 8, &res); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.StepInto("bench", 8, &res); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWireObserve is the binary peer of serve.BenchmarkHTTPObserve.
func BenchmarkWireObserve(b *testing.B) {
	c, stop := benchServer(b)
	defer stop()
	if _, err := c.Create(serve.InstanceConfig{ID: "bench", Spec: gaussSpec(8, 2, 1)}); err != nil {
		b.Fatal(err)
	}
	var as serve.Assignment
	if err := c.AssignmentInto("bench", &as); err != nil {
		b.Fatal(err)
	}
	rewards := make([]float64, len(as.Winners))
	for i := range rewards {
		rewards[i] = 0.5
	}
	batch := []serve.ObservationBatch{{Played: as.Winners, Rewards: rewards}}
	var res serve.ObserveResult
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.ObserveInto("bench", batch, &res); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCodecStep isolates the codec itself: encode one step response
// into a warm buffer and decode it back into a reused struct. This is the
// per-frame CPU cost the transport adds on top of the socket.
func BenchmarkCodecStep(b *testing.B) {
	res := serve.StepResult{
		Slots: 128, Slot: 4096, Observed: 10, ObservedKbps: 2560, Decisions: 32,
		Assignment: serve.Assignment{
			Slot: 4096, DecidedSlot: 4096,
			Winners:  []int{0, 3, 9, 11},
			Strategy: []int{-1, 0, 1, -1, 1, 0, -1, 1},
		},
	}
	var e Encoder
	var d Decoder
	var out serve.StepResult
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Reset()
		e.Begin(OpStep, uint64(i), StatusOK, 0)
		putStepResult(&e, &res)
		e.End()
		d.buf = append(d.buf[:0], e.Bytes()[4+headerLen:]...)
		d.pos = 0
		d.err = nil
		readStepResult(&d, &out)
		if d.err != nil {
			b.Fatal(d.err)
		}
	}
}
