package wire

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"multihopbandit/internal/serve"
)

// maxInflight bounds the pipelining depth of one connection; a caller
// pushing past it gets an error instead of blocking the write path.
const maxInflight = 4096

// Options parameterizes a Client.
type Options struct {
	// CRC requests a CRC-32C trailer on every frame (both directions).
	CRC bool
	// MaxFrame caps accepted response frames (DefaultMaxFrame if 0).
	MaxFrame int
	// DialTimeout bounds each connection attempt (5s if 0).
	DialTimeout time.Duration
}

// Client speaks the binary framed protocol to one banditd. It is safe for
// concurrent use: callers pipeline requests over shard-affine connections
// — the client learns the server's registry shard count from the hello
// exchange, opens (lazily) one connection per shard, and routes every
// request for an instance over the connection of the shard hosting it, so
// one instance's requests never queue behind another shard's work.
type Client struct {
	addr string
	opts Options
	// flags is the CRC bit applied to every request frame.
	flags byte

	hello Hello

	mu     sync.Mutex
	conns  []*conn
	closed bool
}

// Dial connects to a binary-plane listener and performs the hello
// exchange.
func Dial(addr string, opts Options) (*Client, error) {
	c := &Client{addr: addr, opts: opts}
	if opts.CRC {
		c.flags = FlagCRC
	}
	cn, err := c.dial()
	if err != nil {
		return nil, err
	}
	ca := getCall()
	ca.op = OpHello
	ca.hello = &c.hello
	if err := cn.begin(OpHello, 0, ca); err != nil {
		cn.close()
		return nil, err
	}
	err = cn.commit(ca)
	putCall(ca)
	if err != nil {
		cn.close()
		return nil, fmt.Errorf("wire: hello: %w", err)
	}
	if c.hello.Shards < 1 {
		cn.close()
		return nil, fmt.Errorf("wire: hello reported %d shards", c.hello.Shards)
	}
	c.conns = make([]*conn, c.hello.Shards)
	c.conns[0] = cn
	return c, nil
}

// Hello returns the server's negotiated parameters.
func (c *Client) Hello() Hello { return c.hello }

// Close closes every connection. In-flight requests fail.
func (c *Client) Close() error {
	c.mu.Lock()
	c.closed = true
	conns := c.conns
	c.conns = nil
	c.mu.Unlock()
	for _, cn := range conns {
		if cn != nil {
			cn.close()
		}
	}
	return nil
}

func (c *Client) dial() (*conn, error) {
	to := c.opts.DialTimeout
	if to == 0 {
		to = 5 * time.Second
	}
	nc, err := net.DialTimeout("tcp", c.addr, to)
	if err != nil {
		return nil, err
	}
	if tc, ok := nc.(*net.TCPConn); ok {
		_ = tc.SetNoDelay(true)
	}
	cn := &conn{
		nc:      nc,
		bw:      bufio.NewWriterSize(nc, connBufSize),
		pending: make(chan *call, maxInflight),
		flags:   c.flags,
	}
	go cn.readLoop(c.opts.MaxFrame)
	return cn, nil
}

// shardOf mirrors serve.Registry's placement (FNV-1a 32 of the ID mod the
// shard count), so the connection picked for an instance is the one whose
// requests land on the shard hosting it.
func (c *Client) shardOf(id string) int {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(id); i++ {
		h ^= uint32(id[i])
		h *= prime32
	}
	i := int(h) % len(c.conns)
	if i < 0 {
		i += len(c.conns)
	}
	return i
}

// connFor returns the shard-affine connection for id, dialing it on first
// use.
func (c *Client) connFor(id string) (*conn, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, errors.New("wire: client closed")
	}
	i := c.shardOf(id)
	if c.conns[i] == nil {
		cn, err := c.dial()
		if err != nil {
			return nil, err
		}
		c.conns[i] = cn
	}
	return c.conns[i], nil
}

// anyConn returns a connection for instance-independent requests (list,
// create before placement is known).
func (c *Client) anyConn() (*conn, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, errors.New("wire: client closed")
	}
	for _, cn := range c.conns {
		if cn != nil {
			return cn, nil
		}
	}
	cn, err := c.dial()
	if err != nil {
		return nil, err
	}
	c.conns[0] = cn
	return cn, nil
}

// StepInto runs n self-simulation slots and decodes the result into out,
// reusing out's slice capacity — the hot-path form that keeps the client
// side allocation-free at steady state.
func (c *Client) StepInto(id string, n int, out *serve.StepResult) error {
	cn, err := c.connFor(id)
	if err != nil {
		return err
	}
	ca := getCall()
	ca.op = OpStep
	ca.step = out
	if err := cn.begin(OpStep, 0, ca); err != nil {
		putCall(ca)
		return err
	}
	cn.enc.PutString(id)
	cn.enc.PutU32(uint32(int32(n)))
	err = cn.commit(ca)
	putCall(ca)
	return err
}

// Step is StepInto with a freshly allocated result.
func (c *Client) Step(id string, n int) (*serve.StepResult, error) {
	out := new(serve.StepResult)
	if err := c.StepInto(id, n, out); err != nil {
		return nil, err
	}
	return out, nil
}

// ObserveInto applies observation batches and decodes the result into out.
func (c *Client) ObserveInto(id string, batches []serve.ObservationBatch, out *serve.ObserveResult) error {
	return c.observe(id, batches, out, 0)
}

// Observe is ObserveInto with a freshly allocated result.
func (c *Client) Observe(id string, batches []serve.ObservationBatch) (*serve.ObserveResult, error) {
	out := new(serve.ObserveResult)
	if err := c.observe(id, batches, out, 0); err != nil {
		return nil, err
	}
	return out, nil
}

// PushObservations enqueues batches fire-and-forget (the wire peer of the
// JSON API's ?async=1): the response acks the enqueue, not the apply, so
// batch errors surface only in the shard's observation-error counter.
func (c *Client) PushObservations(id string, batches []serve.ObservationBatch) error {
	var out serve.ObserveResult
	return c.observe(id, batches, &out, FlagAsync)
}

func (c *Client) observe(id string, batches []serve.ObservationBatch, out *serve.ObserveResult, extraFlags byte) error {
	cn, err := c.connFor(id)
	if err != nil {
		return err
	}
	ca := getCall()
	ca.op = OpObserve
	ca.obsr = out
	if err := cn.begin(OpObserve, extraFlags, ca); err != nil {
		putCall(ca)
		return err
	}
	cn.enc.PutString(id)
	cn.enc.PutU32(uint32(len(batches)))
	for i := range batches {
		cn.enc.PutInts(batches[i].Played)
		cn.enc.PutF64s(batches[i].Rewards)
	}
	err = cn.commit(ca)
	putCall(ca)
	return err
}

// AssignmentInto reads the current channel assignment into out, reusing
// its slice capacity.
func (c *Client) AssignmentInto(id string, out *serve.Assignment) error {
	cn, err := c.connFor(id)
	if err != nil {
		return err
	}
	ca := getCall()
	ca.op = OpAssignment
	ca.asg = out
	if err := cn.begin(OpAssignment, 0, ca); err != nil {
		putCall(ca)
		return err
	}
	cn.enc.PutString(id)
	err = cn.commit(ca)
	putCall(ca)
	return err
}

// Assignment is AssignmentInto with a freshly allocated result.
func (c *Client) Assignment(id string) (*serve.Assignment, error) {
	out := new(serve.Assignment)
	if err := c.AssignmentInto(id, out); err != nil {
		return nil, err
	}
	return out, nil
}

// Create creates an instance. The payload is the JSON InstanceConfig
// document of the HTTP API, so the full versioned spec surface is
// available over the binary plane.
func (c *Client) Create(cfg serve.InstanceConfig) (*serve.CreateResponse, error) {
	body, err := json.Marshal(cfg)
	if err != nil {
		return nil, err
	}
	// Route by the configured ID when there is one, so the creating
	// connection is already shard-affine for the follow-up traffic.
	var cn *conn
	if cfg.ID != "" {
		cn, err = c.connFor(cfg.ID)
	} else {
		cn, err = c.anyConn()
	}
	if err != nil {
		return nil, err
	}
	ca := getCall()
	ca.op = OpCreate
	ca.wantRaw = true
	if err := cn.begin(OpCreate, 0, ca); err != nil {
		putCall(ca)
		return nil, err
	}
	cn.enc.PutBytes(body)
	err = cn.commit(ca)
	var resp serve.CreateResponse
	if err == nil {
		err = json.Unmarshal(ca.raw, &resp)
	}
	putCall(ca)
	if err != nil {
		return nil, err
	}
	return &resp, nil
}

// Delete closes and removes an instance.
func (c *Client) Delete(id string) error {
	cn, err := c.connFor(id)
	if err != nil {
		return err
	}
	ca := getCall()
	ca.op = OpDelete
	if err := cn.begin(OpDelete, 0, ca); err != nil {
		putCall(ca)
		return err
	}
	cn.enc.PutString(id)
	err = cn.commit(ca)
	putCall(ca)
	return err
}

// List returns the hosted instances.
func (c *Client) List() ([]serve.InstanceInfo, error) {
	cn, err := c.anyConn()
	if err != nil {
		return nil, err
	}
	ca := getCall()
	ca.op = OpList
	ca.wantRaw = true
	if err := cn.begin(OpList, 0, ca); err != nil {
		putCall(ca)
		return nil, err
	}
	err = cn.commit(ca)
	var resp struct {
		Instances []serve.InstanceInfo `json:"instances"`
	}
	if err == nil {
		err = json.Unmarshal(ca.raw, &resp)
	}
	putCall(ca)
	if err != nil {
		return nil, err
	}
	return resp.Instances, nil
}

// call is one in-flight request: its id for response pairing, the typed
// decode target, and a reusable completion channel. Calls are pooled.
type call struct {
	id      uint64
	op      Op
	err     error
	step    *serve.StepResult
	obsr    *serve.ObserveResult
	asg     *serve.Assignment
	hello   *Hello
	wantRaw bool
	raw     []byte
	done    chan struct{}
}

var callPool = sync.Pool{New: func() any { return &call{done: make(chan struct{}, 1)} }}

func getCall() *call { return callPool.Get().(*call) }

func putCall(ca *call) {
	ca.id, ca.op, ca.err = 0, 0, nil
	ca.step, ca.obsr, ca.asg, ca.hello = nil, nil, nil, nil
	ca.wantRaw, ca.raw = false, ca.raw[:0]
	callPool.Put(ca)
}

// conn is one pipelined connection. The write mutex serializes frame
// encoding (into the connection's reused encoder buffer) and pending-queue
// enqueue, so the FIFO queue order matches the byte order on the wire; the
// reader goroutine completes calls in that same order because the server
// responds strictly in request order.
type conn struct {
	nc      net.Conn
	bw      *bufio.Writer
	flags   byte
	pending chan *call

	wmu    sync.Mutex
	enc    Encoder
	nextID uint64
	err    error
}

// begin locks the connection and opens a request frame. On success the
// lock is held; the caller appends the payload and calls commit.
func (cn *conn) begin(op Op, extraFlags byte, ca *call) error {
	cn.wmu.Lock()
	if cn.err != nil {
		err := cn.err
		cn.wmu.Unlock()
		return err
	}
	ca.id = cn.nextID
	cn.nextID++
	cn.enc.Reset()
	cn.enc.Begin(op, ca.id, 0, cn.flags|extraFlags)
	return nil
}

// commit closes the frame, enqueues the call, writes, releases the lock,
// and waits for the reader to complete the call.
func (cn *conn) commit(ca *call) error {
	cn.enc.End()
	select {
	case cn.pending <- ca:
	default:
		cn.wmu.Unlock()
		return fmt.Errorf("wire: more than %d requests in flight", maxInflight)
	}
	_, err := cn.bw.Write(cn.enc.Bytes())
	if err == nil {
		err = cn.bw.Flush()
	}
	if err != nil {
		if cn.err == nil {
			cn.err = err
		}
		cn.wmu.Unlock()
		// Closing the socket unblocks the reader, whose failure path
		// completes every pending call (including this one).
		cn.nc.Close()
		<-ca.done
		return err
	}
	cn.wmu.Unlock()
	<-ca.done
	return ca.err
}

func (cn *conn) close() { cn.nc.Close() }

// readLoop decodes response frames and completes pending calls in FIFO
// order. Any stream error fails the connection: the error is latched for
// future writers and every pending call is completed with it.
func (cn *conn) readLoop(maxFrame int) {
	br := bufio.NewReaderSize(cn.nc, connBufSize)
	dec := &Decoder{MaxFrame: maxFrame}
	for {
		if err := dec.ReadFrame(br); err != nil {
			cn.fail(err)
			return
		}
		var ca *call
		select {
		case ca = <-cn.pending:
		default:
			cn.fail(errors.New("wire: unsolicited response frame"))
			return
		}
		if dec.ReqID != ca.id {
			ca.err = fmt.Errorf("wire: response id %d for request %d", dec.ReqID, ca.id)
			ca.done <- struct{}{}
			cn.fail(ca.err)
			return
		}
		if dec.Status != StatusOK {
			ca.err = statusError(dec.Status, dec.Str())
			ca.done <- struct{}{}
			continue
		}
		switch {
		case ca.step != nil:
			readStepResult(dec, ca.step)
		case ca.obsr != nil:
			readObserveResult(dec, ca.obsr)
		case ca.asg != nil:
			readAssignment(dec, ca.asg)
		case ca.hello != nil:
			readHello(dec, ca.hello)
		case ca.wantRaw:
			ca.raw = append(ca.raw[:0], dec.Bytes()...)
		}
		ca.err = dec.Err()
		ca.done <- struct{}{}
	}
}

// fail latches err and completes every pending call with it. New requests
// observe the latched error in begin; requests enqueued concurrently with
// the drain are caught by a second drain after the socket is closed (their
// writes fail, but the calls are already queued).
func (cn *conn) fail(err error) {
	if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) {
		err = errors.New("wire: connection closed")
	}
	cn.wmu.Lock()
	if cn.err == nil {
		cn.err = err
	} else {
		err = cn.err
	}
	cn.nc.Close()
	for {
		select {
		case ca := <-cn.pending:
			ca.err = err
			ca.done <- struct{}{}
		default:
			cn.wmu.Unlock()
			return
		}
	}
}
