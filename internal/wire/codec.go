package wire

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// castagnoli is the CRC-32C table shared with the WAL's record framing.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// An Encoder builds frames into a single reused buffer. It is not safe for
// concurrent use; server connections and client shards each own one. The
// zero value is ready to use.
type Encoder struct {
	buf []byte
	// start indexes the current frame's length field; payFrom its payload
	// start (for the CRC trailer).
	start   int
	payFrom int
	crc     bool
}

// Reset drops all encoded frames but keeps the buffer's capacity.
func (e *Encoder) Reset() { e.buf = e.buf[:0] }

// Bytes returns the encoded frames. The slice is invalidated by the next
// Begin or Reset.
func (e *Encoder) Bytes() []byte { return e.buf }

// Begin opens a frame. The length field is back-patched by End, so frames
// can be streamed into the buffer without knowing payload sizes up front.
func (e *Encoder) Begin(op Op, reqID uint64, status, flags byte) {
	e.start = len(e.buf)
	e.buf = append(e.buf, 0, 0, 0, 0, Version, flags, byte(op), status)
	e.buf = binary.LittleEndian.AppendUint64(e.buf, reqID)
	e.crc = flags&FlagCRC != 0
	e.payFrom = len(e.buf)
}

// End closes the frame opened by Begin: appends the CRC-32C trailer if the
// frame's flags requested one and patches the length field.
func (e *Encoder) End() {
	if e.crc {
		sum := crc32.Checksum(e.buf[e.payFrom:], castagnoli)
		e.buf = binary.LittleEndian.AppendUint32(e.buf, sum)
	}
	binary.LittleEndian.PutUint32(e.buf[e.start:], uint32(len(e.buf)-e.start-4))
}

// PutU8 appends one byte to the open frame's payload.
func (e *Encoder) PutU8(v byte) { e.buf = append(e.buf, v) }

// PutU32 appends a little-endian u32.
func (e *Encoder) PutU32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }

// PutU64 appends a little-endian u64.
func (e *Encoder) PutU64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }

// PutF64 appends a float64 as its IEEE 754 bits.
func (e *Encoder) PutF64(v float64) { e.PutU64(math.Float64bits(v)) }

// PutString appends a u32 length followed by the string bytes.
func (e *Encoder) PutString(s string) {
	e.PutU32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}

// PutBytes appends a u32 length followed by the raw bytes.
func (e *Encoder) PutBytes(b []byte) {
	e.PutU32(uint32(len(b)))
	e.buf = append(e.buf, b...)
}

// PutInts appends a u32 count followed by the values as i32s (-1 travels
// as 0xFFFFFFFF).
func (e *Encoder) PutInts(vs []int) {
	e.PutU32(uint32(len(vs)))
	for _, v := range vs {
		e.buf = binary.LittleEndian.AppendUint32(e.buf, uint32(int32(v)))
	}
}

// PutF64s appends a u32 count followed by the values' IEEE 754 bits.
func (e *Encoder) PutF64s(vs []float64) {
	e.PutU32(uint32(len(vs)))
	for _, v := range vs {
		e.buf = binary.LittleEndian.AppendUint64(e.buf, math.Float64bits(v))
	}
}

// A Decoder reads frames from a stream into a reused payload buffer and
// then serves as a bounds-checked cursor over that payload. It is not safe
// for concurrent use. Cursor reads after a payload overrun return zero
// values; the first overrun is latched and reported by Err, so a codec can
// decode a whole payload and check once.
type Decoder struct {
	// MaxFrame caps the accepted frame length (DefaultMaxFrame if 0). The
	// cap is enforced on the length field itself, before any allocation.
	MaxFrame int

	// Frame header fields, valid after a successful ReadFrame.
	Op     Op
	Flags  byte
	Status byte
	ReqID  uint64

	buf     []byte
	pos     int
	err     error
	scratch [16]byte
}

// ReadFrame reads one whole frame, verifying the version byte and, when
// the frame carries one, the CRC-32C trailer. On success the header fields
// are populated and the payload cursor is rewound. Any error leaves the
// stream mid-frame and the connection should be dropped. io.EOF is
// returned untouched at a clean frame boundary.
func (d *Decoder) ReadFrame(r io.Reader) error {
	max := d.MaxFrame
	if max <= 0 {
		max = DefaultMaxFrame
	}
	hdr := d.scratch[:4+headerLen]
	if _, err := io.ReadFull(r, hdr); err != nil {
		if err == io.ErrUnexpectedEOF {
			return fmt.Errorf("wire: truncated frame header: %w", err)
		}
		return err
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	if n < headerLen {
		return fmt.Errorf("%w (length %d)", ErrFrameTooShort, n)
	}
	if int64(n) > int64(max) {
		return fmt.Errorf("%w (length %d > max %d)", ErrFrameTooLarge, n, max)
	}
	if hdr[4] != Version {
		return fmt.Errorf("%w (got %d)", ErrVersion, hdr[4])
	}
	d.Flags = hdr[5]
	d.Op = Op(hdr[6])
	d.Status = hdr[7]
	d.ReqID = binary.LittleEndian.Uint64(hdr[8:16])
	body := int(n) - headerLen
	hasCRC := d.Flags&FlagCRC != 0
	if hasCRC {
		if body < 4 {
			return fmt.Errorf("%w (no room for checksum)", ErrFrameTooShort)
		}
		body -= 4
	}
	if cap(d.buf) < body {
		d.buf = make([]byte, body)
	}
	d.buf = d.buf[:body]
	if _, err := io.ReadFull(r, d.buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return fmt.Errorf("wire: truncated frame payload: %w", err)
	}
	if hasCRC {
		tr := d.scratch[:4]
		if _, err := io.ReadFull(r, tr); err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return fmt.Errorf("wire: truncated frame checksum: %w", err)
		}
		if crc32.Checksum(d.buf, castagnoli) != binary.LittleEndian.Uint32(tr) {
			return ErrChecksum
		}
	}
	d.pos = 0
	d.err = nil
	return nil
}

// Err reports the first payload overrun since the last ReadFrame.
func (d *Decoder) Err() error { return d.err }

// Remaining reports the unread payload bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.pos }

// need advances the cursor n bytes, latching ErrShortPayload (and
// returning nil) on overrun.
func (d *Decoder) need(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || n > len(d.buf)-d.pos {
		d.err = ErrShortPayload
		return nil
	}
	b := d.buf[d.pos : d.pos+n]
	d.pos += n
	return b
}

// U8 reads one payload byte.
func (d *Decoder) U8() byte {
	b := d.need(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// U32 reads a little-endian u32.
func (d *Decoder) U32() uint32 {
	b := d.need(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a little-endian u64.
func (d *Decoder) U64() uint64 {
	b := d.need(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// F64 reads a float64 from its IEEE 754 bits.
func (d *Decoder) F64() float64 { return math.Float64frombits(d.U64()) }

// Bytes reads a u32-length-prefixed blob as a view into the payload
// buffer, valid until the next ReadFrame. The length is bounds-checked
// against the remaining payload before any use, so a corrupt length cannot
// force an allocation or a panic.
func (d *Decoder) Bytes() []byte { return d.need(int(d.U32())) }

// Str reads a u32-length-prefixed string. It allocates; hot paths use
// Bytes and the map[string([]byte)] lookup idiom instead.
func (d *Decoder) Str() string { return string(d.Bytes()) }

// Ints reads a u32-count-prefixed i32 slice into dst's backing array,
// growing it only when the count exceeds its capacity.
func (d *Decoder) Ints(dst []int) []int {
	n := int(d.U32())
	if d.err != nil || n > d.Remaining()/4 {
		if d.err == nil {
			d.err = ErrShortPayload
		}
		return dst[:0]
	}
	if cap(dst) < n {
		dst = make([]int, n)
	}
	dst = dst[:n]
	for i := range dst {
		dst[i] = int(int32(binary.LittleEndian.Uint32(d.buf[d.pos+4*i:])))
	}
	d.pos += 4 * n
	return dst
}

// F64s reads a u32-count-prefixed float64 slice into dst's backing array.
func (d *Decoder) F64s(dst []float64) []float64 {
	n := int(d.U32())
	if d.err != nil || n > d.Remaining()/8 {
		if d.err == nil {
			d.err = ErrShortPayload
		}
		return dst[:0]
	}
	if cap(dst) < n {
		dst = make([]float64, n)
	}
	dst = dst[:n]
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(d.buf[d.pos+8*i:]))
	}
	d.pos += 8 * n
	return dst
}
