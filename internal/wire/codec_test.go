package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"

	"multihopbandit/internal/serve"
)

func encodeFrame(t *testing.T, flags byte, build func(e *Encoder)) []byte {
	t.Helper()
	var e Encoder
	e.Begin(OpStep, 42, StatusOK, flags)
	build(&e)
	e.End()
	return append([]byte(nil), e.Bytes()...)
}

func TestFrameRoundTrip(t *testing.T) {
	for _, flags := range []byte{0, FlagCRC} {
		var e Encoder
		e.Begin(OpStep, 7, StatusOK, flags)
		e.PutString("instance-a")
		e.PutU32(512)
		e.PutF64(3.5)
		e.PutInts([]int{-1, 0, 5})
		e.PutF64s([]float64{0.25, 1})
		e.End()

		var d Decoder
		if err := d.ReadFrame(bytes.NewReader(e.Bytes())); err != nil {
			t.Fatalf("flags %d: %v", flags, err)
		}
		if d.Op != OpStep || d.ReqID != 7 || d.Status != StatusOK || d.Flags != flags {
			t.Fatalf("header = op %v id %d status %d flags %d", d.Op, d.ReqID, d.Status, d.Flags)
		}
		if got := d.Str(); got != "instance-a" {
			t.Fatalf("string = %q", got)
		}
		if got := d.U32(); got != 512 {
			t.Fatalf("u32 = %d", got)
		}
		if got := d.F64(); got != 3.5 {
			t.Fatalf("f64 = %v", got)
		}
		ints := d.Ints(nil)
		if len(ints) != 3 || ints[0] != -1 || ints[1] != 0 || ints[2] != 5 {
			t.Fatalf("ints = %v", ints)
		}
		fs := d.F64s(nil)
		if len(fs) != 2 || fs[0] != 0.25 || fs[1] != 1 {
			t.Fatalf("f64s = %v", fs)
		}
		if d.Err() != nil || d.Remaining() != 0 {
			t.Fatalf("err=%v remaining=%d", d.Err(), d.Remaining())
		}
	}
}

func TestMultipleFramesOneStream(t *testing.T) {
	var e Encoder
	for i := 0; i < 3; i++ {
		e.Begin(OpAssignment, uint64(i), StatusOK, 0)
		e.PutU32(uint32(i * 10))
		e.End()
	}
	r := bytes.NewReader(e.Bytes())
	var d Decoder
	for i := 0; i < 3; i++ {
		if err := d.ReadFrame(r); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if d.ReqID != uint64(i) || d.U32() != uint32(i*10) {
			t.Fatalf("frame %d: id %d", i, d.ReqID)
		}
	}
	if err := d.ReadFrame(r); err != io.EOF {
		t.Fatalf("after last frame: %v, want io.EOF", err)
	}
}

func TestDecodeErrors(t *testing.T) {
	good := encodeFrame(t, FlagCRC, func(e *Encoder) { e.PutString("x") })

	t.Run("truncated-header", func(t *testing.T) {
		var d Decoder
		err := d.ReadFrame(bytes.NewReader(good[:9]))
		if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("truncated-payload", func(t *testing.T) {
		var d Decoder
		err := d.ReadFrame(bytes.NewReader(good[:len(good)-6]))
		if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("oversized", func(t *testing.T) {
		b := append([]byte(nil), good...)
		binary.LittleEndian.PutUint32(b, uint32(DefaultMaxFrame+1))
		var d Decoder
		if err := d.ReadFrame(bytes.NewReader(b)); !errors.Is(err, ErrFrameTooLarge) {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("oversized-custom-cap", func(t *testing.T) {
		d := Decoder{MaxFrame: 16}
		if err := d.ReadFrame(bytes.NewReader(good)); !errors.Is(err, ErrFrameTooLarge) {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("undersized-length", func(t *testing.T) {
		b := append([]byte(nil), good...)
		binary.LittleEndian.PutUint32(b, headerLen-1)
		var d Decoder
		if err := d.ReadFrame(bytes.NewReader(b)); !errors.Is(err, ErrFrameTooShort) {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("bad-version", func(t *testing.T) {
		b := append([]byte(nil), good...)
		b[4] = Version + 1
		var d Decoder
		if err := d.ReadFrame(bytes.NewReader(b)); !errors.Is(err, ErrVersion) {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("corrupt-payload-crc", func(t *testing.T) {
		b := append([]byte(nil), good...)
		b[4+headerLen+2] ^= 0x40 // flip a payload bit, keep the trailer
		var d Decoder
		if err := d.ReadFrame(bytes.NewReader(b)); !errors.Is(err, ErrChecksum) {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("uncrc-frame-passes-corruption", func(t *testing.T) {
		// Without the CRC flag the same corruption is invisible to the
		// framing layer — that is the documented trade the flag buys.
		b := encodeFrame(t, 0, func(e *Encoder) { e.PutU32(99) })
		b[4+headerLen] ^= 0x01
		var d Decoder
		if err := d.ReadFrame(bytes.NewReader(b)); err != nil {
			t.Fatalf("err = %v", err)
		}
	})
}

// TestCursorOverrun checks the payload cursor latches ErrShortPayload on
// any read past the payload end — including hostile length prefixes far
// larger than the payload — and never panics or over-allocates.
func TestCursorOverrun(t *testing.T) {
	t.Run("scalar", func(t *testing.T) {
		b := encodeFrame(t, 0, func(e *Encoder) { e.PutU8(1) })
		var d Decoder
		if err := d.ReadFrame(bytes.NewReader(b)); err != nil {
			t.Fatal(err)
		}
		_ = d.U8()
		if d.U32() != 0 || d.Err() == nil {
			t.Fatal("overrun not latched")
		}
		if !errors.Is(d.Err(), ErrShortPayload) {
			t.Fatalf("err = %v", d.Err())
		}
	})
	t.Run("hostile-string-length", func(t *testing.T) {
		b := encodeFrame(t, 0, func(e *Encoder) { e.PutU32(0xFFFFFFF0) })
		var d Decoder
		if err := d.ReadFrame(bytes.NewReader(b)); err != nil {
			t.Fatal(err)
		}
		if got := d.Str(); got != "" || !errors.Is(d.Err(), ErrShortPayload) {
			t.Fatalf("str = %q err = %v", got, d.Err())
		}
	})
	t.Run("hostile-slice-count", func(t *testing.T) {
		b := encodeFrame(t, 0, func(e *Encoder) { e.PutU32(1 << 30); e.PutU32(0) })
		var d Decoder
		if err := d.ReadFrame(bytes.NewReader(b)); err != nil {
			t.Fatal(err)
		}
		if got := d.Ints(nil); len(got) != 0 || !errors.Is(d.Err(), ErrShortPayload) {
			t.Fatalf("ints = %v err = %v", got, d.Err())
		}
	})
}

// TestStepResultCodecRoundTrip checks the serve-type payload codecs are
// lossless, including the -1 sentinels in slot counters and strategies.
func TestStepResultCodecRoundTrip(t *testing.T) {
	in := serve.StepResult{
		Slots:        128,
		Slot:         1 << 40,
		Observed:     12.75,
		ObservedKbps: 3251.5,
		Decisions:    32,
		Assignment: serve.Assignment{
			Slot:            1 << 40,
			DecidedSlot:     -1,
			Winners:         []int{0, 3, 9},
			Strategy:        []int{-1, 0, 1, -1},
			EstimatedWeight: 7.25,
		},
	}
	var e Encoder
	e.Begin(OpStep, 1, StatusOK, 0)
	putStepResult(&e, &in)
	e.End()
	var d Decoder
	if err := d.ReadFrame(bytes.NewReader(e.Bytes())); err != nil {
		t.Fatal(err)
	}
	var out serve.StepResult
	readStepResult(&d, &out)
	if d.Err() != nil {
		t.Fatal(d.Err())
	}
	if out.Slots != in.Slots || out.Slot != in.Slot || out.Observed != in.Observed ||
		out.ObservedKbps != in.ObservedKbps || out.Decisions != in.Decisions {
		t.Fatalf("step result = %+v", out)
	}
	a, b := out.Assignment, in.Assignment
	if a.Slot != b.Slot || a.DecidedSlot != b.DecidedSlot || a.EstimatedWeight != b.EstimatedWeight {
		t.Fatalf("assignment = %+v", a)
	}
	if len(a.Winners) != 3 || a.Winners[2] != 9 || len(a.Strategy) != 4 || a.Strategy[0] != -1 {
		t.Fatalf("assignment slices = %+v", a)
	}
}

// TestCodecZeroAlloc is the alloc guard of the tentpole: at steady state
// (warm Encoder/Decoder buffers, reused result structs) a full
// encode+decode round trip of a step response allocates nothing, with and
// without the CRC trailer.
func TestCodecZeroAlloc(t *testing.T) {
	res := serve.StepResult{
		Slots: 128, Slot: 4096, Observed: 10, ObservedKbps: 2560, Decisions: 32,
		Assignment: serve.Assignment{
			Slot: 4096, DecidedSlot: 4096,
			Winners:  []int{0, 3, 9},
			Strategy: []int{-1, 0, 1, -1},
		},
	}
	for _, tc := range []struct {
		name  string
		flags byte
	}{{"plain", 0}, {"crc", FlagCRC}} {
		t.Run(tc.name, func(t *testing.T) {
			var e Encoder
			var d Decoder
			var out serve.StepResult
			var stream bytes.Reader
			roundTrip := func() {
				e.Reset()
				e.Begin(OpStep, 9, StatusOK, tc.flags)
				putStepResult(&e, &res)
				e.End()
				stream.Reset(e.Bytes())
				if err := d.ReadFrame(&stream); err != nil {
					t.Fatal(err)
				}
				readStepResult(&d, &out)
				if d.Err() != nil {
					t.Fatal(d.Err())
				}
			}
			roundTrip() // warm the buffers
			if avg := testing.AllocsPerRun(100, roundTrip); avg != 0 {
				t.Fatalf("allocs/op = %v, want 0", avg)
			}
		})
	}
}
