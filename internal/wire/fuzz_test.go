package wire

import (
	"bytes"
	"testing"
)

// FuzzReadFrame holds the frame decoder to its contract on hostile input:
// truncated, oversized, corrupt, or garbage streams must produce an error
// (or a clean decode of some frame), never a panic or an unbounded
// allocation. The payload cursor is then driven over whatever decoded, so
// hostile length prefixes inside the payload are fuzzed too.
func FuzzReadFrame(f *testing.F) {
	var e Encoder
	e.Begin(OpStep, 7, StatusOK, 0)
	e.PutString("instance-a")
	e.PutU32(128)
	e.End()
	f.Add(append([]byte(nil), e.Bytes()...))
	e.Reset()
	e.Begin(OpObserve, 9, StatusOK, FlagCRC|FlagAsync)
	e.PutString("b")
	e.PutU32(1)
	e.PutInts([]int{1, 2})
	e.PutF64s([]float64{0.5, 0.25})
	e.End()
	f.Add(append([]byte(nil), e.Bytes()...))
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	f.Add(bytes.Repeat([]byte{0x01}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		d := Decoder{MaxFrame: 1 << 16}
		r := bytes.NewReader(data)
		for i := 0; i < 4; i++ {
			if err := d.ReadFrame(r); err != nil {
				return
			}
			// Drive every cursor accessor; all must bounds-check.
			_ = d.U8()
			_ = d.Str()
			_ = d.U32()
			_ = d.Ints(nil)
			_ = d.F64s(nil)
			_ = d.F64()
			_ = d.Bytes()
			_ = d.Err()
		}
	})
}
