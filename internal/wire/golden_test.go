package wire

import (
	"net"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"multihopbandit/internal/core"
	"multihopbandit/internal/serve"
	"multihopbandit/internal/spec"
)

// serialScheme builds the serial core.Scheme equivalent of a served
// instance through the one spec.Build path — the same construction the
// serve-package golden tests use.
func serialScheme(t *testing.T, s spec.ScenarioSpec) *core.Scheme {
	t.Helper()
	b, err := spec.Build(s)
	if err != nil {
		t.Fatal(err)
	}
	scheme, err := core.New(core.Config{
		Net:         b.Artifacts.Net,
		Channels:    b.Sampler,
		M:           b.Spec.Channel.M,
		R:           b.Spec.Decision.R,
		D:           b.Spec.Decision.D,
		Policy:      b.Policy,
		UpdateEvery: b.Spec.Decision.UpdateEvery,
	})
	if err != nil {
		t.Fatal(err)
	}
	return scheme
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestBinaryMatchesJSONAndSerial is the transport-identity golden test of
// the binary data plane: for every committed scenario spec under
// testdata/specs/, a trajectory served over the binary protocol is
// bit-identical, slot by slot, to the same spec served over HTTP/JSON and
// to the serial core.Scheme run. The binary plane must be a transport, not
// a second implementation.
func TestBinaryMatchesJSONAndSerial(t *testing.T) {
	const slots = 300
	dir := filepath.Join("..", "..", "testdata", "specs")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatalf("no committed specs under %s", dir)
	}
	for _, ent := range entries {
		ent := ent
		if filepath.Ext(ent.Name()) != ".json" {
			continue
		}
		t.Run(ent.Name(), func(t *testing.T) {
			sp, err := spec.ParseFile(filepath.Join(dir, ent.Name()))
			if err != nil {
				t.Fatal(err)
			}

			// Binary-served instance over real TCP.
			reg, _, addr := startServer(t, 2)
			_ = reg
			bc, err := Dial(addr, Options{CRC: true})
			if err != nil {
				t.Fatal(err)
			}
			defer bc.Close()
			if _, err := bc.Create(serve.InstanceConfig{ID: "golden", Spec: sp}); err != nil {
				t.Fatal(err)
			}

			// JSON-served instance over real HTTP, in a separate registry
			// so the two planes cannot share state by accident.
			jreg := serve.NewRegistry(serve.RegistryConfig{Shards: 2})
			defer jreg.Close()
			ts := httptest.NewServer(serve.NewServer(jreg))
			defer ts.Close()
			jc := serve.NewClient(ts.URL)
			if _, err := jc.Create(serve.InstanceConfig{ID: "golden", Spec: sp}); err != nil {
				t.Fatal(err)
			}

			scheme := serialScheme(t, sp)

			var bres serve.StepResult
			for s := 0; s < slots; s++ {
				if err := bc.StepInto("golden", 1, &bres); err != nil {
					t.Fatalf("slot %d: binary step: %v", s, err)
				}
				jres, err := jc.Step("golden", 1)
				if err != nil {
					t.Fatalf("slot %d: json step: %v", s, err)
				}
				want, err := scheme.Step()
				if err != nil {
					t.Fatalf("slot %d: serial step: %v", s, err)
				}
				if bres.Observed != want.Observed || bres.Observed != jres.Observed {
					t.Fatalf("slot %d: observed %v (binary) vs %v (json) vs %v (serial)",
						s, bres.Observed, jres.Observed, want.Observed)
				}
				if bres.ObservedKbps != jres.ObservedKbps {
					t.Fatalf("slot %d: observed kbps %v (binary) vs %v (json)", s, bres.ObservedKbps, jres.ObservedKbps)
				}
				if !equalInts(bres.Assignment.Winners, want.Winners) || !equalInts(bres.Assignment.Winners, jres.Assignment.Winners) {
					t.Fatalf("slot %d: winners %v (binary) vs %v (json) vs %v (serial)",
						s, bres.Assignment.Winners, jres.Assignment.Winners, want.Winners)
				}
				if !equalInts(bres.Assignment.Strategy, want.Strategy) || !equalInts(bres.Assignment.Strategy, jres.Assignment.Strategy) {
					t.Fatalf("slot %d: strategy diverged across transports", s)
				}
				if bres.Assignment.DecidedSlot != jres.Assignment.DecidedSlot {
					t.Fatalf("slot %d: decided slot %d (binary) vs %d (json)",
						s, bres.Assignment.DecidedSlot, jres.Assignment.DecidedSlot)
				}
				if want.Decided && bres.Assignment.EstimatedWeight != want.EstimatedWeight {
					t.Fatalf("slot %d: estimated weight %v (binary) vs %v (serial)",
						s, bres.Assignment.EstimatedWeight, want.EstimatedWeight)
				}
			}
		})
	}
}

// TestBinaryExternalObserveMatchesJSON drives the external-environment
// mode over both transports with identical deterministic reward streams:
// the assignment trajectories must stay bit-identical, proving the binary
// observe path feeds the learner exactly the bytes the JSON path does.
func TestBinaryExternalObserveMatchesJSON(t *testing.T) {
	const slots = 150
	sp := gaussSpec(10, 2, 2)
	rewardAt := func(slot, i int) float64 { return float64((slot*7+i*3)%11) / 11 }

	_, _, addr := startServer(t, 1)
	bc, err := Dial(addr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer bc.Close()
	if _, err := bc.Create(serve.InstanceConfig{ID: "x", Spec: sp}); err != nil {
		t.Fatal(err)
	}

	jreg := serve.NewRegistry(serve.RegistryConfig{Shards: 1})
	defer jreg.Close()
	ts := httptest.NewServer(serve.NewServer(jreg))
	defer ts.Close()
	jc := serve.NewClient(ts.URL)
	if _, err := jc.Create(serve.InstanceConfig{ID: "x", Spec: sp}); err != nil {
		t.Fatal(err)
	}

	var bas serve.Assignment
	var bores serve.ObserveResult
	for s := 0; s < slots; s++ {
		if err := bc.AssignmentInto("x", &bas); err != nil {
			t.Fatal(err)
		}
		jas, err := jc.Assignment("x")
		if err != nil {
			t.Fatal(err)
		}
		if !equalInts(bas.Winners, jas.Winners) || bas.Slot != jas.Slot || bas.DecidedSlot != jas.DecidedSlot {
			t.Fatalf("slot %d: assignment diverged: %+v (binary) vs %+v (json)", s, bas, *jas)
		}
		rewards := make([]float64, len(bas.Winners))
		for i := range rewards {
			rewards[i] = rewardAt(s, i)
		}
		batch := []serve.ObservationBatch{{Played: bas.Winners, Rewards: rewards}}
		if err := bc.ObserveInto("x", batch, &bores); err != nil {
			t.Fatal(err)
		}
		if _, err := jc.Observe("x", batch); err != nil {
			t.Fatal(err)
		}
		if bores.Slot != s+1 {
			t.Fatalf("slot %d: binary observe advanced to %d", s, bores.Slot)
		}
	}
}

// TestServeListenerReuse pins the assumption behind per-shard accept
// loops: multiple goroutines accepting on one TCP listener each get
// distinct connections.
func TestServeListenerReuse(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	for i := 0; i < 3; i++ {
		go func() {
			c, err := net.Dial("tcp", ln.Addr().String())
			if err == nil {
				c.Close()
			}
		}()
	}
	seen := map[string]bool{}
	for i := 0; i < 3; i++ {
		c, err := ln.Accept()
		if err != nil {
			t.Fatal(err)
		}
		if seen[c.RemoteAddr().String()] {
			t.Fatalf("duplicate accept of %s", c.RemoteAddr())
		}
		seen[c.RemoteAddr().String()] = true
		c.Close()
	}
}
