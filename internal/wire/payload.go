package wire

import (
	"errors"
	"net/http"

	"multihopbandit/internal/serve"
	"multihopbandit/internal/spec"
)

// Payload codecs for the serving plane's result types, shared by server
// and client so the two sides cannot drift. Slot counters travel as i64
// (they are unbounded and DecidedSlot starts at -1); per-request counts as
// u32.

func putAssignment(e *Encoder, a *serve.Assignment) {
	e.PutU64(uint64(int64(a.Slot)))
	e.PutU64(uint64(int64(a.DecidedSlot)))
	e.PutInts(a.Winners)
	e.PutInts(a.Strategy)
	e.PutF64(a.EstimatedWeight)
}

// readAssignment decodes into a, reusing its slice capacity.
func readAssignment(d *Decoder, a *serve.Assignment) {
	a.Slot = int(int64(d.U64()))
	a.DecidedSlot = int(int64(d.U64()))
	a.Winners = d.Ints(a.Winners)
	a.Strategy = d.Ints(a.Strategy)
	a.EstimatedWeight = d.F64()
}

func putStepResult(e *Encoder, r *serve.StepResult) {
	e.PutU32(uint32(r.Slots))
	e.PutU64(uint64(int64(r.Slot)))
	e.PutF64(r.Observed)
	e.PutF64(r.ObservedKbps)
	e.PutU32(uint32(r.Decisions))
	putAssignment(e, &r.Assignment)
}

// readStepResult decodes into r, reusing its assignment slice capacity.
func readStepResult(d *Decoder, r *serve.StepResult) {
	r.Slots = int(d.U32())
	r.Slot = int(int64(d.U64()))
	r.Observed = d.F64()
	r.ObservedKbps = d.F64()
	r.Decisions = int(d.U32())
	readAssignment(d, &r.Assignment)
}

func putObserveResult(e *Encoder, r *serve.ObserveResult) {
	e.PutU32(uint32(r.Applied))
	e.PutU64(uint64(int64(r.Slot)))
}

func readObserveResult(d *Decoder, r *serve.ObserveResult) {
	r.Applied = int(d.U32())
	r.Slot = int(int64(d.U64()))
}

// Hello carries the server's connection-negotiation response: the registry
// shard count (so clients can open one shard-affine connection per shard)
// and the server's frame cap.
type Hello struct {
	Shards   int
	MaxFrame int
}

func putHello(e *Encoder, h *Hello) {
	e.PutU32(uint32(h.Shards))
	e.PutU32(uint32(h.MaxFrame))
}

func readHello(d *Decoder, h *Hello) {
	h.Shards = int(d.U32())
	h.MaxFrame = int(d.U32())
}

// errStatus maps a serving-plane error onto its wire status byte; the
// mapping mirrors the HTTP layer's instanceErrorStatus/handleCreate cases
// so a failure surfaces with the same class on either plane.
func errStatus(err error) byte {
	var ke *spec.KindError
	var fe *spec.FieldError
	var ve *spec.VersionError
	switch {
	case errors.Is(err, serve.ErrClosed):
		return StatusInstanceClosed
	case errors.Is(err, serve.ErrExists):
		return StatusAlreadyExists
	case errors.Is(err, serve.ErrSnapshotUnsupported):
		return StatusSnapshotUnsupported
	case errors.As(err, &ke) || errors.As(err, &fe) || errors.As(err, &ve):
		return StatusInvalidSpec
	default:
		return StatusInvalidRequest
	}
}

// statusError maps a non-OK response status and message back into the
// HTTP API's typed error, so serve.ErrorCode works identically on binary
// transport failures.
func statusError(status byte, msg string) error {
	code, httpStatus := serve.CodeInvalidRequest, http.StatusBadRequest
	switch status {
	case StatusInvalidSpec:
		code, httpStatus = serve.CodeInvalidSpec, http.StatusBadRequest
	case StatusNotFound:
		code, httpStatus = serve.CodeNotFound, http.StatusNotFound
	case StatusAlreadyExists:
		code, httpStatus = serve.CodeAlreadyExists, http.StatusConflict
	case StatusInstanceClosed:
		code, httpStatus = serve.CodeInstanceClosed, http.StatusGone
	case StatusSnapshotUnsupported:
		code, httpStatus = serve.CodeSnapshotUnsupported, http.StatusConflict
	case StatusInternal:
		code, httpStatus = "internal", http.StatusInternalServerError
	}
	return &serve.APIError{Code: code, Message: msg, Status: httpStatus}
}
