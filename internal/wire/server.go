package wire

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"

	"multihopbandit/internal/obs"
	"multihopbandit/internal/serve"
)

// connBufSize sizes each connection's read and write buffers. Large enough
// that a pipelined burst of step requests is absorbed in one read and
// answered in one write.
const connBufSize = 64 << 10

// Server serves the binary framed protocol on top of a serve.Registry. It
// is the binary peer of serve.Server: requests dispatch into the same
// actor mailboxes, so the two planes can serve the same instances
// concurrently with identical semantics.
//
// Accepting is parallel: Serve runs one accept loop per registry shard, so
// under multi-core GOMAXPROCS inbound connections are picked up and driven
// by independent goroutines with no shared accept bottleneck. Each
// connection is handled by one goroutine that decodes frames, dispatches,
// and encodes responses entirely from per-connection reused buffers — the
// steady-state hot path (step/observe/assignment on known instances)
// allocates nothing.
type Server struct {
	reg      *serve.Registry
	maxFrame int

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	handlers sync.WaitGroup

	connsOpen    atomic.Int64
	connsTotal   atomic.Int64
	framesIn     atomic.Int64
	framesOut    atomic.Int64
	bytesIn      atomic.Int64
	bytesOut     atomic.Int64
	decodeErrors atomic.Int64
}

// NewServer builds a binary-plane server over reg and registers its wire
// metric families on the registry's exposition surface (so /metrics on the
// HTTP plane reports binary-plane traffic). Like serve.NewServer, at most
// one wire server may be built per registry.
func NewServer(reg *serve.Registry) *Server {
	s := &Server{
		reg:      reg,
		maxFrame: DefaultMaxFrame,
		conns:    make(map[net.Conn]struct{}),
	}
	o := reg.Obs()
	o.RegisterValues("banditd_wire_connections", "Open binary data-plane connections.", obs.KindGauge,
		func(emit obs.EmitValue) { emit(float64(s.connsOpen.Load())) })
	o.RegisterValues("banditd_wire_connections_total", "Binary data-plane connections accepted.", obs.KindCounter,
		func(emit obs.EmitValue) { emit(float64(s.connsTotal.Load())) })
	o.RegisterValues("banditd_wire_frames_total", "Binary protocol frames by direction.", obs.KindCounter,
		func(emit obs.EmitValue) {
			emit(float64(s.framesIn.Load()), obs.L("dir", "in"))
			emit(float64(s.framesOut.Load()), obs.L("dir", "out"))
		})
	o.RegisterValues("banditd_wire_bytes_total", "Binary protocol bytes by direction.", obs.KindCounter,
		func(emit obs.EmitValue) {
			emit(float64(s.bytesIn.Load()), obs.L("dir", "in"))
			emit(float64(s.bytesOut.Load()), obs.L("dir", "out"))
		})
	o.RegisterValues("banditd_wire_decode_errors_total", "Connections dropped on malformed, oversized, or truncated frames.", obs.KindCounter,
		func(emit obs.EmitValue) { emit(float64(s.decodeErrors.Load())) })
	return s
}

// Serve accepts connections on ln until Shutdown closes it, running one
// accept loop per registry shard. It always returns a non-nil error; after
// Shutdown the error is net.ErrClosed.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return net.ErrClosed
	}
	s.listener = ln
	s.mu.Unlock()
	loops := s.reg.Shards()
	if loops < 1 {
		loops = 1
	}
	errc := make(chan error, loops)
	var accepting sync.WaitGroup
	for i := 0; i < loops; i++ {
		accepting.Add(1)
		go func() {
			defer accepting.Done()
			for {
				c, err := ln.Accept()
				if err != nil {
					errc <- err
					return
				}
				if !s.track(c) {
					c.Close()
					return
				}
				s.handlers.Add(1)
				go s.handleConn(c)
			}
		}()
	}
	accepting.Wait()
	return <-errc
}

// track registers a live connection; it refuses (false) once the server is
// shut down.
func (s *Server) track(c net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.conns[c] = struct{}{}
	s.connsOpen.Add(1)
	s.connsTotal.Add(1)
	return true
}

func (s *Server) untrack(c net.Conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
	s.connsOpen.Add(-1)
	c.Close()
}

// Shutdown stops accepting, then waits for in-flight connection handlers
// to drain naturally (clients closing their connections). If ctx expires
// first the remaining connections are closed forcibly; either way all
// handlers have returned when Shutdown does.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.closed = true
	ln := s.listener
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	done := make(chan struct{})
	go func() {
		s.handlers.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		<-done
		return ctx.Err()
	}
}

// countingReader / countingWriter sit between the connection and its bufio
// buffers so the byte counters see actual socket traffic.
type countingReader struct {
	r io.Reader
	n *atomic.Int64
}

func (cr countingReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.n.Add(int64(n))
	return n, err
}

type countingWriter struct {
	w io.Writer
	n *atomic.Int64
}

func (cw countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n.Add(int64(n))
	return n, err
}

// connState is the per-connection reused state: codec buffers, a serving
// session (reusable actor reply channel), an instance cache so repeated
// requests for the same instance skip the registry's shard lock, and
// scratch observation batches whose backing arrays are recycled across
// sync observe requests (the actor is done with them when the reply
// arrives; async observes copy instead).
type connState struct {
	dec     Decoder
	enc     Encoder
	sess    serve.Session
	cache   map[string]*serve.Instance
	batches []serve.ObservationBatch
}

func (s *Server) handleConn(c net.Conn) {
	defer s.handlers.Done()
	defer s.untrack(c)
	br := bufio.NewReaderSize(countingReader{c, &s.bytesIn}, connBufSize)
	bw := bufio.NewWriterSize(countingWriter{c, &s.bytesOut}, connBufSize)
	st := &connState{cache: make(map[string]*serve.Instance)}
	st.dec.MaxFrame = s.maxFrame
	for {
		if err := st.dec.ReadFrame(br); err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				s.decodeErrors.Add(1)
			}
			return
		}
		s.framesIn.Add(1)
		st.enc.Reset()
		s.serveFrame(st)
		s.framesOut.Add(1)
		if _, err := bw.Write(st.enc.Bytes()); err != nil {
			return
		}
		// Flush only when the read buffer has no more pipelined requests:
		// a burst of k requests is answered with one batched write.
		if br.Buffered() == 0 {
			if err := bw.Flush(); err != nil {
				return
			}
		}
	}
}

// serveFrame dispatches one decoded request frame and encodes exactly one
// response frame. Responses echo the request's CRC choice.
func (s *Server) serveFrame(st *connState) {
	op, reqID := st.dec.Op, st.dec.ReqID
	flags := st.dec.Flags & FlagCRC
	switch op {
	case OpHello:
		st.enc.Begin(op, reqID, StatusOK, flags)
		putHello(&st.enc, &Hello{Shards: s.reg.Shards(), MaxFrame: s.maxFrame})
		st.enc.End()
	case OpStep:
		s.serveStep(st, flags)
	case OpObserve:
		s.serveObserve(st, flags)
	case OpAssignment:
		s.serveAssignment(st, flags)
	case OpCreate:
		s.serveCreate(st, flags)
	case OpDelete:
		s.serveDelete(st, flags)
	case OpList:
		infos := s.reg.List()
		body, err := json.Marshal(map[string]any{"instances": infos})
		if err != nil {
			s.replyErr(st, flags, StatusInternal, err)
			return
		}
		st.enc.Begin(op, reqID, StatusOK, flags)
		st.enc.PutBytes(body)
		st.enc.End()
	default:
		s.replyErr(st, flags, StatusInvalidRequest, fmt.Errorf("wire: unknown opcode %d", op))
	}
}

// replyErr encodes an error response: the status byte plus the message as
// the payload.
func (s *Server) replyErr(st *connState, flags, status byte, err error) {
	st.enc.Begin(st.dec.Op, st.dec.ReqID, status, flags)
	st.enc.PutString(err.Error())
	st.enc.End()
}

// instance resolves id through the connection's cache; the registry is
// consulted only on a miss. The string(id) conversions in map lookups do
// not allocate.
func (s *Server) instance(st *connState, id []byte) (*serve.Instance, bool) {
	if inst, ok := st.cache[string(id)]; ok {
		return inst, true
	}
	inst, ok := s.reg.Get(string(id))
	if ok {
		st.cache[string(id)] = inst
	}
	return inst, ok
}

// evict drops a cached handle that turned out to be closed and retries the
// registry once: the instance may have been deleted and recreated under
// the same ID since this connection cached it.
func (s *Server) evict(st *connState, id []byte) (*serve.Instance, bool) {
	delete(st.cache, string(id))
	return s.instance(st, id)
}

var errNoID = errors.New("wire: malformed request payload")

func (s *Server) serveStep(st *connState, flags byte) {
	id := st.dec.Bytes()
	n := int(int32(st.dec.U32()))
	if st.dec.Err() != nil {
		s.replyErr(st, flags, StatusInvalidRequest, errNoID)
		return
	}
	inst, ok := s.instance(st, id)
	if !ok {
		s.replyErr(st, flags, StatusNotFound, fmt.Errorf("serve: no instance %q", id))
		return
	}
	res, err := st.sess.Step(inst, n)
	if errors.Is(err, serve.ErrClosed) {
		if inst, ok = s.evict(st, id); ok {
			res, err = st.sess.Step(inst, n)
		} else {
			s.replyErr(st, flags, StatusNotFound, fmt.Errorf("serve: no instance %q", id))
			return
		}
	}
	if err != nil {
		s.replyErr(st, flags, errStatus(err), err)
		return
	}
	st.enc.Begin(OpStep, st.dec.ReqID, StatusOK, flags)
	putStepResult(&st.enc, res)
	st.enc.End()
}

func (s *Server) serveAssignment(st *connState, flags byte) {
	id := st.dec.Bytes()
	if st.dec.Err() != nil {
		s.replyErr(st, flags, StatusInvalidRequest, errNoID)
		return
	}
	inst, ok := s.instance(st, id)
	if !ok {
		s.replyErr(st, flags, StatusNotFound, fmt.Errorf("serve: no instance %q", id))
		return
	}
	res, err := st.sess.Assignment(inst)
	if errors.Is(err, serve.ErrClosed) {
		if inst, ok = s.evict(st, id); ok {
			res, err = st.sess.Assignment(inst)
		} else {
			s.replyErr(st, flags, StatusNotFound, fmt.Errorf("serve: no instance %q", id))
			return
		}
	}
	if err != nil {
		s.replyErr(st, flags, errStatus(err), err)
		return
	}
	st.enc.Begin(OpAssignment, st.dec.ReqID, StatusOK, flags)
	putAssignment(&st.enc, res)
	st.enc.End()
}

func (s *Server) serveObserve(st *connState, flags byte) {
	async := st.dec.Flags&FlagAsync != 0
	id := st.dec.Bytes()
	nb := int(st.dec.U32())
	// Each batch costs at least its two u32 counts, so the batch count is
	// bounds-checked against the remaining payload before any allocation.
	if st.dec.Err() != nil || nb < 0 || nb > st.dec.Remaining()/8 {
		s.replyErr(st, flags, StatusInvalidRequest, errNoID)
		return
	}
	var batches []serve.ObservationBatch
	if async {
		// The actor consumes async batches after this request returns, so
		// they must own their arrays; decode into fresh slices.
		batches = make([]serve.ObservationBatch, nb)
	} else {
		// Sync batches are fully applied before the actor replies, so the
		// connection's scratch arrays can be recycled request to request.
		for len(st.batches) < nb {
			st.batches = append(st.batches, serve.ObservationBatch{})
		}
		batches = st.batches[:nb]
	}
	for i := range batches {
		batches[i].Played = st.dec.Ints(batches[i].Played)
		batches[i].Rewards = st.dec.F64s(batches[i].Rewards)
	}
	if st.dec.Err() != nil {
		s.replyErr(st, flags, StatusInvalidRequest, errNoID)
		return
	}
	inst, ok := s.instance(st, id)
	if !ok {
		s.replyErr(st, flags, StatusNotFound, fmt.Errorf("serve: no instance %q", id))
		return
	}
	if async {
		err := inst.PushObservations(batches)
		if errors.Is(err, serve.ErrClosed) {
			if inst, ok = s.evict(st, id); ok {
				err = inst.PushObservations(batches)
			} else {
				s.replyErr(st, flags, StatusNotFound, fmt.Errorf("serve: no instance %q", id))
				return
			}
		}
		if err != nil {
			s.replyErr(st, flags, errStatus(err), err)
			return
		}
		st.enc.Begin(OpObserve, st.dec.ReqID, StatusOK, flags)
		putObserveResult(&st.enc, &serve.ObserveResult{Applied: 0, Slot: -1})
		st.enc.End()
		return
	}
	res, err := st.sess.Observe(inst, batches)
	if errors.Is(err, serve.ErrClosed) {
		if inst, ok = s.evict(st, id); ok {
			res, err = st.sess.Observe(inst, batches)
		} else {
			s.replyErr(st, flags, StatusNotFound, fmt.Errorf("serve: no instance %q", id))
			return
		}
	}
	if err != nil {
		s.replyErr(st, flags, errStatus(err), err)
		return
	}
	st.enc.Begin(OpObserve, st.dec.ReqID, StatusOK, flags)
	putObserveResult(&st.enc, res)
	st.enc.End()
}

func (s *Server) serveCreate(st *connState, flags byte) {
	body := st.dec.Bytes()
	if st.dec.Err() != nil {
		s.replyErr(st, flags, StatusInvalidRequest, errNoID)
		return
	}
	var cfg serve.InstanceConfig
	if err := json.Unmarshal(body, &cfg); err != nil {
		s.replyErr(st, flags, StatusInvalidRequest, fmt.Errorf("wire: create payload: %w", err))
		return
	}
	h, err := s.reg.Create(cfg)
	if err != nil {
		s.replyErr(st, flags, errStatus(err), err)
		return
	}
	canon := h.Spec()
	resp, err := json.Marshal(serve.CreateResponse{
		ID:          h.ID(),
		Shard:       h.Shard(),
		N:           canon.Topology.N,
		M:           canon.Channel.M,
		K:           h.K(),
		Policy:      canon.Policy.Kind,
		Channel:     canon.Channel.Kind,
		UpdateEvery: canon.Decision.UpdateEvery,
	})
	if err != nil {
		s.replyErr(st, flags, StatusInternal, err)
		return
	}
	st.enc.Begin(OpCreate, st.dec.ReqID, StatusOK, flags)
	st.enc.PutBytes(resp)
	st.enc.End()
}

func (s *Server) serveDelete(st *connState, flags byte) {
	id := st.dec.Bytes()
	if st.dec.Err() != nil {
		s.replyErr(st, flags, StatusInvalidRequest, errNoID)
		return
	}
	delete(st.cache, string(id))
	if err := s.reg.Remove(string(id)); err != nil {
		s.replyErr(st, flags, StatusNotFound, err)
		return
	}
	st.enc.Begin(OpDelete, st.dec.ReqID, StatusOK, flags)
	st.enc.End()
}
