package wire

import (
	"context"
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"multihopbandit/internal/obs"
	"multihopbandit/internal/serve"
	"multihopbandit/internal/spec"
)

func gaussSpec(n, m, updateEvery int) spec.ScenarioSpec {
	return spec.ScenarioSpec{
		Seed:     1,
		Topology: spec.TopologySpec{N: n, RequireConnected: true},
		Channel:  spec.ChannelSpec{M: m},
		Decision: spec.DecisionSpec{UpdateEvery: updateEvery},
	}
}

// startServer brings up a registry and a wire server on a loopback
// listener, returning the dial address.
func startServer(t *testing.T, shards int) (*serve.Registry, *Server, string) {
	t.Helper()
	reg := serve.NewRegistry(serve.RegistryConfig{Shards: shards})
	t.Cleanup(func() { reg.Close() })
	s := NewServer(reg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = s.Serve(ln)
	}()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
		<-done
	})
	return reg, s, ln.Addr().String()
}

// TestWireWorkflow exercises the whole binary API surface over real TCP:
// hello, create, list, step, assignment, observe (sync and async), typed
// errors, delete.
func TestWireWorkflow(t *testing.T) {
	for _, crc := range []bool{false, true} {
		name := "plain"
		if crc {
			name = "crc"
		}
		t.Run(name, func(t *testing.T) {
			_, _, addr := startServer(t, 2)
			c, err := Dial(addr, Options{CRC: crc})
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			if h := c.Hello(); h.Shards != 2 || h.MaxFrame != DefaultMaxFrame {
				t.Fatalf("hello = %+v", h)
			}

			cr, err := c.Create(serve.InstanceConfig{ID: "a", Spec: gaussSpec(10, 2, 1)})
			if err != nil {
				t.Fatal(err)
			}
			if cr.ID != "a" || cr.N != 10 || cr.M != 2 || cr.Policy != "zhou-li" {
				t.Fatalf("create = %+v", cr)
			}

			infos, err := c.List()
			if err != nil || len(infos) != 1 || infos[0].ID != "a" {
				t.Fatalf("list = %+v, %v", infos, err)
			}

			st, err := c.Step("a", 16)
			if err != nil {
				t.Fatal(err)
			}
			if st.Slots != 16 || st.Slot != 16 || st.Decisions != 16 || len(st.Assignment.Winners) == 0 {
				t.Fatalf("step = %+v", st)
			}

			as, err := c.Assignment("a")
			if err != nil {
				t.Fatal(err)
			}
			if as.Slot != 16 || len(as.Winners) == 0 {
				t.Fatalf("assignment = %+v", as)
			}

			rewards := make([]float64, len(as.Winners))
			for i := range rewards {
				rewards[i] = 0.5
			}
			ores, err := c.Observe("a", []serve.ObservationBatch{{Played: as.Winners, Rewards: rewards}})
			if err != nil {
				t.Fatal(err)
			}
			if ores.Applied != 1 || ores.Slot != 17 {
				t.Fatalf("observe = %+v", ores)
			}

			if err := c.PushObservations("a", []serve.ObservationBatch{{Played: as.Winners, Rewards: rewards}}); err != nil {
				t.Fatal(err)
			}
			// The async batch is applied in mailbox order before any later
			// request on the same instance's actor.
			as2, err := c.Assignment("a")
			if err != nil {
				t.Fatal(err)
			}
			if as2.Slot != 18 {
				t.Fatalf("slot after async observe = %d, want 18", as2.Slot)
			}

			// Typed errors: unknown instance and invalid spec surface the
			// same structured codes as the HTTP plane.
			if _, err := c.Step("ghost", 1); serve.ErrorCode(err) != serve.CodeNotFound {
				t.Fatalf("step ghost: %v (code %q)", err, serve.ErrorCode(err))
			}
			bad := gaussSpec(10, 2, 1)
			bad.Policy.Kind = "no-such-policy"
			if _, err := c.Create(serve.InstanceConfig{ID: "b", Spec: bad}); serve.ErrorCode(err) != serve.CodeInvalidSpec {
				t.Fatalf("bad create: %v (code %q)", err, serve.ErrorCode(err))
			}
			if _, err := c.Create(serve.InstanceConfig{ID: "a", Spec: gaussSpec(10, 2, 1)}); serve.ErrorCode(err) != serve.CodeAlreadyExists {
				t.Fatalf("dup create: %v (code %q)", err, serve.ErrorCode(err))
			}
			if _, err := c.Step("a", -4); serve.ErrorCode(err) != serve.CodeInvalidRequest {
				t.Fatalf("bad step: %v (code %q)", err, serve.ErrorCode(err))
			}

			if err := c.Delete("a"); err != nil {
				t.Fatal(err)
			}
			if err := c.Delete("a"); serve.ErrorCode(err) != serve.CodeNotFound {
				t.Fatalf("double delete: %v (code %q)", err, serve.ErrorCode(err))
			}
		})
	}
}

// TestWireShardAffinity checks the client routes an instance's requests to
// the connection matching its registry shard: after traffic to instances
// on every shard, the client holds at most one connection per shard and
// the placement agrees with Registry.ShardOf.
func TestWireShardAffinity(t *testing.T) {
	reg, s, addr := startServer(t, 4)
	c, err := Dial(addr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Hello().Shards != 4 {
		t.Fatalf("shards = %d", c.Hello().Shards)
	}
	ids := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	for _, id := range ids {
		if c.shardOf(id) != reg.ShardOf(id) {
			t.Fatalf("client shard %d != registry shard %d for %q", c.shardOf(id), reg.ShardOf(id), id)
		}
		if _, err := c.Create(serve.InstanceConfig{ID: id, Spec: gaussSpec(8, 2, 1)}); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Step(id, 4); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.connsOpen.Load(); got > 4 {
		t.Fatalf("open connections = %d, want ≤ shard count 4", got)
	}
}

// TestWirePipelining hammers one client from many goroutines — concurrent
// callers interleave pipelined requests over shared shard connections —
// and checks every response pairs with its request (the per-instance slot
// counts must sum exactly). Run under -race this is the transport's
// concurrency test.
func TestWirePipelining(t *testing.T) {
	_, _, addr := startServer(t, 2)
	c, err := Dial(addr, Options{CRC: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const (
		workers = 16
		reqs    = 50
		batch   = 3
	)
	ids := []string{"p0", "p1", "p2", "p3"}
	for _, id := range ids {
		if _, err := c.Create(serve.InstanceConfig{ID: id, Spec: gaussSpec(8, 2, 1)}); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			id := ids[w%len(ids)]
			var res serve.StepResult
			for i := 0; i < reqs; i++ {
				if err := c.StepInto(id, batch, &res); err != nil {
					errs <- err
					return
				}
				if res.Slots != batch {
					errs <- errors.New("response batch size mismatch")
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	infos, err := c.List()
	if err != nil {
		t.Fatal(err)
	}
	perInstance := workers / len(ids) * reqs * batch
	for _, info := range infos {
		if info.Slot != perInstance {
			t.Fatalf("instance %s served %d slots, want %d", info.ID, info.Slot, perInstance)
		}
	}
}

// TestWireMetrics checks the wire families are registered on the shared
// exposition surface and count real traffic, and that garbage bytes bump
// the decode-error counter while clean disconnects do not.
func TestWireMetrics(t *testing.T) {
	reg, s, addr := startServer(t, 1)
	c, err := Dial(addr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Create(serve.InstanceConfig{ID: "a", Spec: gaussSpec(8, 2, 1)}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Step("a", 8); err != nil {
		t.Fatal(err)
	}
	c.Close()
	waitFor(t, func() bool { return s.connsOpen.Load() == 0 })
	if s.decodeErrors.Load() != 0 {
		t.Fatalf("clean disconnect counted as decode error")
	}

	// A connection speaking garbage must be dropped and counted.
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	garbage := append([]byte{0xFF, 0xFF, 0xFF, 0xFF}, make([]byte, headerLen)...)
	if _, err := nc.Write(garbage); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	_ = nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := nc.Read(buf); err == nil {
		t.Fatal("server kept a garbage connection open")
	}
	nc.Close()
	waitFor(t, func() bool { return s.decodeErrors.Load() == 1 })

	var b strings.Builder
	reg.Obs().WritePrometheus(&b)
	text := b.String()
	exp, err := obs.Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.Validate(text); err != nil {
		t.Fatalf("exposition invalid with wire families: %v", err)
	}
	for _, want := range []string{
		"banditd_wire_connections ",
		`banditd_wire_frames_total{dir="in"}`,
		`banditd_wire_frames_total{dir="out"}`,
		`banditd_wire_bytes_total{dir="in"}`,
		"banditd_wire_decode_errors_total 1",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
	if v, ok := exp.Value("banditd_wire_frames_total", obs.L("dir", "in")); !ok || v < 3 {
		t.Fatalf("frames_total{in} = %v %v", v, ok)
	}
}

// TestWireShutdownDrain checks Shutdown stops accepting, waits for live
// connections to finish, and force-closes them at the deadline.
func TestWireShutdownDrain(t *testing.T) {
	reg := serve.NewRegistry(serve.RegistryConfig{Shards: 1})
	defer reg.Close()
	s := NewServer(reg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- s.Serve(ln) }()
	c, err := Dial(ln.Addr().String(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Create(serve.InstanceConfig{ID: "a", Spec: gaussSpec(8, 2, 1)}); err != nil {
		t.Fatal(err)
	}

	// A shutdown with a live idle connection must hit the deadline and
	// force-close it.
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("shutdown = %v", err)
	}
	if err := <-served; !errors.Is(err, net.ErrClosed) {
		t.Fatalf("serve returned %v", err)
	}
	if _, err := c.Step("a", 1); err == nil {
		t.Fatal("request succeeded after forced shutdown")
	}
	c.Close()
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in 5s")
		}
		time.Sleep(time.Millisecond)
	}
}
