// Package wire is the binary data plane of the decision-serving runtime: a
// compact length-prefixed framed protocol over persistent TCP connections,
// served by banditd next to the HTTP/JSON API (`banditd -listen-binary`).
// It exists to take transport encode/decode off the serving hot path — a
// step request/response round trip costs a handful of fixed-width reads
// and writes instead of an HTTP exchange plus two JSON documents — and to
// let the serving plane parallelize: the server runs one accept loop per
// registry shard, and clients route every instance's requests over the
// connection matching its registry shard (serve.Registry.ShardOf), so a
// connection's request stream stays on one shard's instances.
//
// # Framing
//
// Every message — request or response — is one frame (integers are
// little-endian):
//
//	[4] frame length: bytes after this field (header + payload + CRC)
//	[1] protocol version (1)
//	[1] flags: bit0 = payload CRC-32C trailer present, bit1 = async observe
//	[1] opcode
//	[1] status: 0 in requests; 0 = OK, else an error class in responses
//	[8] request id, echoed verbatim in the response
//	[…] payload (opcode-specific)
//	[4] CRC-32C (Castagnoli) of the payload, iff flags bit0
//
// Frames are capped (MaxFrame, default 16 MiB): an oversized length field
// is rejected before any allocation. Responses carry the CRC flag iff the
// request did, so integrity checking is a per-client choice with zero cost
// for clients that skip it (loopback, checksummed links).
//
// Payload scalars are fixed-width: u8/u32/u64/f64 (IEEE 754 bits), strings
// and byte blobs are a u32 length followed by the bytes, and id slices are
// a u32 count of i32s (-1 travels as 0xFFFFFFFF). Two opcodes off the hot
// path — create and list — carry the same JSON documents as the HTTP API
// inside their binary payload, so the versioned ScenarioSpec surface stays
// single-sourced.
//
// # Pipelining
//
// Requests on one connection are processed strictly in order and responses
// are written in request order; the request id is echoed so clients can
// verify the pairing. A client may keep many requests in flight — Client
// does: concurrent callers interleave frames on the shard's connection and
// a single reader goroutine matches responses back by queue order. The
// server flushes its write buffer only when the read buffer runs dry, so a
// pipelined burst is answered with a batched write.
//
// # Identity
//
// The binary plane is a transport, not a second implementation: requests
// dispatch into the same actor mailboxes as HTTP (through serve.Session),
// so a binary-served trajectory is bit-identical to the HTTP/JSON-served
// and serial core.Scheme trajectories — golden-tested across every
// committed scenario spec.
package wire

import "errors"

// Version is the protocol version carried by every frame.
const Version = 1

// DefaultMaxFrame caps a frame's length field (and therefore any payload
// allocation) unless overridden.
const DefaultMaxFrame = 16 << 20

// headerLen is the fixed frame header after the length field.
const headerLen = 12

// Op identifies a request kind.
type Op uint8

// Protocol opcodes.
const (
	// OpHello negotiates a connection: the response carries the registry
	// shard count (for connection affinity) and the server's frame cap.
	OpHello Op = 1
	// OpStep runs self-simulation slots: [id string][u32 slots] →
	// StepResult.
	OpStep Op = 2
	// OpObserve applies external observation batches: [id string][u32
	// batches]{[u32 n][n×i32 played][n×f64 rewards]} → [u32 applied][u32
	// slot]. With flags bit1 (async) the batches are enqueued
	// fire-and-forget and the response acks the enqueue with applied=0.
	OpObserve Op = 3
	// OpAssignment reads the current channel assignment: [id string] →
	// Assignment.
	OpAssignment Op = 4
	// OpCreate creates an instance; the payload is the HTTP API's
	// InstanceConfig JSON document, the response CreateResponse JSON.
	OpCreate Op = 5
	// OpDelete closes and removes an instance: [id string] → empty.
	OpDelete Op = 6
	// OpList lists hosted instances; the response is the HTTP API's
	// instance-list JSON document.
	OpList Op = 7
)

// String returns the opcode's wire name.
func (o Op) String() string {
	switch o {
	case OpHello:
		return "hello"
	case OpStep:
		return "step"
	case OpObserve:
		return "observe"
	case OpAssignment:
		return "assignment"
	case OpCreate:
		return "create"
	case OpDelete:
		return "delete"
	case OpList:
		return "list"
	default:
		return "unknown"
	}
}

// Frame flag bits.
const (
	// FlagCRC marks a payload CRC-32C trailer.
	FlagCRC = 1 << 0
	// FlagAsync marks an OpObserve request as fire-and-forget.
	FlagAsync = 1 << 1
)

// Response status codes. They map 1:1 onto the HTTP API's structured error
// codes (serve.Code*), so a client can surface the same typed errors on
// either plane.
const (
	StatusOK                  = 0
	StatusInvalidRequest      = 1
	StatusInvalidSpec         = 2
	StatusNotFound            = 3
	StatusAlreadyExists       = 4
	StatusInstanceClosed      = 5
	StatusSnapshotUnsupported = 6
	StatusInternal            = 7
)

// Decode errors. ReadFrame and the payload cursor return these (wrapped
// with context); a frame decoder never panics on hostile input — the fuzz
// suite holds it to that.
var (
	// ErrFrameTooLarge is a length field above the decoder's frame cap.
	ErrFrameTooLarge = errors.New("wire: frame exceeds maximum size")
	// ErrFrameTooShort is a length field smaller than the fixed header.
	ErrFrameTooShort = errors.New("wire: frame shorter than header")
	// ErrVersion is an unsupported protocol version byte.
	ErrVersion = errors.New("wire: unsupported protocol version")
	// ErrChecksum is a CRC-32C trailer mismatch.
	ErrChecksum = errors.New("wire: payload checksum mismatch")
	// ErrShortPayload is a payload cursor read past the payload end (a
	// truncated or corrupt frame body).
	ErrShortPayload = errors.New("wire: truncated payload")
)
